#include "index/index_builder.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/thread_pool.h"

namespace xrank::index {

std::string_view IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kNaiveId:
      return "Naive-ID";
    case IndexKind::kNaiveRank:
      return "Naive-Rank";
    case IndexKind::kDil:
      return "DIL";
    case IndexKind::kRdil:
      return "RDIL";
    case IndexKind::kHdil:
      return "HDIL";
  }
  return "Unknown";
}

size_t ResolveBuildThreads(int num_threads) {
  if (num_threads > 0) return static_cast<size_t>(num_threads);
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

std::vector<std::pair<size_t, size_t>> PartitionByWeight(
    const std::vector<uint64_t>& weights, size_t num_shards) {
  std::vector<std::pair<size_t, size_t>> shards;
  size_t n = weights.size();
  if (n == 0 || num_shards == 0) return shards;
  num_shards = std::min(num_shards, n);
  uint64_t total = 0;
  for (uint64_t w : weights) total += w;

  size_t begin = 0;
  uint64_t consumed = 0;
  for (size_t s = 0; s < num_shards && begin < n; ++s) {
    size_t end = begin;
    uint64_t acc = 0;
    if (s + 1 == num_shards) {
      end = n;
    } else {
      size_t remaining_shards = num_shards - s;
      uint64_t target =
          (total - consumed + remaining_shards - 1) / remaining_shards;
      while (end < n && (end == begin || acc < target)) {
        acc += weights[end];
        ++end;
      }
    }
    shards.emplace_back(begin, end);
    consumed += acc;
    begin = end;
  }
  return shards;
}

namespace {

using graph::NodeId;
using graph::XmlGraph;

// Accumulates naive (element-granularity) postings: term -> ordinal ->
// posting under construction. Ordinals are assigned in global preorder, so
// iterating the inner map yields ID order.
using NaiveAccumulator =
    std::map<std::string, std::map<uint32_t, Posting>>;

struct ExtractionState {
  const XmlGraph* graph;
  const std::vector<double>* ranks;
  const Analyzer* analyzer;
  bool build_naive;

  ExtractionResult out;
  NaiveAccumulator naive;
  // Global preorder ordinal of this state's first element; a document shard
  // continues the numbering where the preceding shard's documents end, so
  // partitioned extraction assigns the same ordinals as a sequential pass.
  uint32_t ordinal_base = 0;
  // Ancestor chain of the current DFS path: (ordinal, rank) pairs.
  std::vector<std::pair<uint32_t, float>> ancestor_stack;
  uint32_t position_counter = 0;  // reset per document
};

void VisitElement(ExtractionState* state, NodeId element) {
  const XmlGraph& graph = *state->graph;
  const auto& data = graph.node(element);

  uint32_t ordinal =
      state->ordinal_base +
      static_cast<uint32_t>(state->out.ordinal_to_dewey.size());
  state->out.ordinal_to_dewey.push_back(data.dewey_id);
  float rank = static_cast<float>((*state->ranks)[element]);
  state->ancestor_stack.emplace_back(ordinal, rank);

  // Tokenize the element's direct text (its value children, in order).
  std::map<std::string, std::vector<uint32_t>> term_positions;
  for (NodeId value : data.value_children) {
    std::vector<Analyzer::Token> tokens = state->analyzer->Tokenize(
        graph.node(value).text, &state->position_counter);
    for (Analyzer::Token& token : tokens) {
      term_positions[std::move(token.term)].push_back(token.position);
    }
  }

  for (auto& [term, positions] : term_positions) {
    ++state->out.direct_occurrence_count;
    Posting posting;
    posting.id = data.dewey_id;
    posting.elem_rank = rank;
    posting.positions = positions;
    state->out.dewey_postings[term].push_back(std::move(posting));

    if (state->build_naive) {
      // The naive adaptation replicates the occurrence into every ancestor
      // (paper Section 4.1, space-overhead discussion).
      for (const auto& [anc_ordinal, anc_rank] : state->ancestor_stack) {
        Posting& naive_posting = state->naive[term][anc_ordinal];
        naive_posting.id = dewey::DeweyId({anc_ordinal});
        naive_posting.elem_rank = anc_rank;
        naive_posting.positions.insert(naive_posting.positions.end(),
                                       positions.begin(), positions.end());
      }
    }
  }

  for (NodeId child : data.element_children) {
    VisitElement(state, child);
  }
  state->ancestor_stack.pop_back();
}

// Flattens a state's naive accumulator into ordinal-ordered posting
// vectors, appending to `out` (per-shard ordinal ranges are disjoint and
// increasing, so appending shard flushes in shard order preserves order).
void FlattenNaive(ExtractionState* state, TermPostingsMap* out) {
  for (auto& [term, by_ordinal] : state->naive) {
    std::vector<Posting>& list = (*out)[term];
    for (auto& [ordinal, posting] : by_ordinal) {
      list.push_back(std::move(posting));
    }
  }
  state->naive.clear();
}

void ApplyTfIdf(ExtractionResult* out) {
  // Replace the ElemRank field with (1 + ln tf) · ln(1 + N/df), where tf
  // is the occurrence count inside the posting's element and df the
  // number of elements with a direct occurrence of the term. Normalized
  // by the corpus-wide maximum so ranks stay in (0, 1], preserving the
  // threshold-algorithm overestimate (Section 4.3.2).
  double n = static_cast<double>(out->element_count);
  double max_weight = 0.0;
  auto weight = [&](const Posting& posting, double df) {
    double tf = static_cast<double>(posting.positions.size());
    return (1.0 + std::log(std::max(tf, 1.0))) * std::log(1.0 + n / df);
  };
  for (auto& [term, postings] : out->dewey_postings) {
    double df = static_cast<double>(postings.size());
    for (Posting& posting : postings) {
      max_weight = std::max(max_weight, weight(posting, df));
    }
  }
  if (max_weight <= 0.0) max_weight = 1.0;
  for (auto& [term, postings] : out->dewey_postings) {
    double df = static_cast<double>(postings.size());
    for (Posting& posting : postings) {
      posting.elem_rank = static_cast<float>(weight(posting, df) / max_weight);
    }
  }
  for (auto& [term, postings] : out->naive_postings) {
    // df at element granularity: direct-occurrence count of the term.
    auto it = out->dewey_postings.find(term);
    double df = it != out->dewey_postings.end()
                    ? static_cast<double>(it->second.size())
                    : 1.0;
    for (Posting& posting : postings) {
      posting.elem_rank = static_cast<float>(weight(posting, df) / max_weight);
    }
  }
}

}  // namespace

Result<ExtractionResult> ExtractPostings(const XmlGraph& graph,
                                         const std::vector<double>& elem_ranks,
                                         const ExtractionOptions& options) {
  if (elem_ranks.size() != graph.node_count()) {
    return Status::InvalidArgument(
        "elem_ranks size does not match graph node count");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  Analyzer analyzer(options.analyzer);

  std::unordered_set<uint32_t> excluded(options.exclude_documents.begin(),
                                        options.exclude_documents.end());
  // Surviving documents with their global preorder ordinal bases.
  std::vector<uint32_t> docs;
  std::vector<uint32_t> ordinal_bases;
  uint32_t next_base = 0;
  for (uint32_t doc = 0; doc < graph.documents().size(); ++doc) {
    if (excluded.count(doc) > 0) continue;
    docs.push_back(doc);
    ordinal_bases.push_back(next_base);
    next_base += graph.documents()[doc].element_count;
  }

  size_t num_workers =
      std::min(ResolveBuildThreads(options.num_threads), docs.size());
  ExtractionResult merged;

  if (num_workers <= 1) {
    // Sequential reference path: one state over all documents.
    ExtractionState state;
    state.graph = &graph;
    state.ranks = &elem_ranks;
    state.analyzer = &analyzer;
    state.build_naive = options.build_naive;
    for (uint32_t doc : docs) {
      state.position_counter = 0;
      VisitElement(&state, graph.documents()[doc].root);
    }
    FlattenNaive(&state, &state.out.naive_postings);
    merged = std::move(state.out);
  } else {
    // Partition documents into contiguous shards balanced by element count;
    // each worker extracts its shard independently, then the shards are
    // merged in document order — term posting lists concatenate (documents
    // are visited in increasing Dewey order) and naive ordinal ranges are
    // disjoint, so the merged result is identical to the sequential pass.
    std::vector<uint64_t> weights;
    weights.reserve(docs.size());
    for (uint32_t doc : docs) {
      weights.push_back(graph.documents()[doc].element_count + 1);
    }
    std::vector<std::pair<size_t, size_t>> shards =
        PartitionByWeight(weights, num_workers);

    std::vector<ExtractionState> states(shards.size());
    ThreadPool pool(static_cast<int>(num_workers));
    pool.ParallelFor(
        0, shards.size(), 1, [&](size_t begin, size_t end, size_t) {
          for (size_t s = begin; s < end; ++s) {
            ExtractionState& state = states[s];
            state.graph = &graph;
            state.ranks = &elem_ranks;
            state.analyzer = &analyzer;
            state.build_naive = options.build_naive;
            state.ordinal_base = ordinal_bases[shards[s].first];
            for (size_t d = shards[s].first; d < shards[s].second; ++d) {
              state.position_counter = 0;
              VisitElement(&state, graph.documents()[docs[d]].root);
            }
          }
        });

    for (ExtractionState& state : states) {
      for (auto& [term, postings] : state.out.dewey_postings) {
        std::vector<Posting>& list = merged.dewey_postings[term];
        std::move(postings.begin(), postings.end(), std::back_inserter(list));
      }
      FlattenNaive(&state, &merged.naive_postings);
      merged.ordinal_to_dewey.insert(merged.ordinal_to_dewey.end(),
                                     state.out.ordinal_to_dewey.begin(),
                                     state.out.ordinal_to_dewey.end());
      merged.direct_occurrence_count += state.out.direct_occurrence_count;
    }
  }
  merged.element_count = merged.ordinal_to_dewey.size();

  if (options.rank_source == RankSource::kTfIdf) {
    ApplyTfIdf(&merged);
  }
  return merged;
}

// ------------------------------------------------------------ persistence --

namespace {

constexpr uint32_t kIndexMagic = 0x584E524Bu;  // "XNRK"
// Header page layout (page 0).
constexpr size_t kMagicOffset = 0;
constexpr size_t kKindOffset = 4;
constexpr size_t kListPagesOffset = 8;
constexpr size_t kIndexPagesOffset = 16;
constexpr size_t kLexiconPagesOffset = 24;
constexpr size_t kEntryCountOffset = 32;
constexpr size_t kLexFirstPageOffset = 40;
constexpr size_t kLexPageCountOffset = 44;
constexpr size_t kLexByteLenOffset = 48;
constexpr size_t kListUsedBytesOffset = 56;
// Posting format (PR 6). Pre-codec files carry zeros here — pages are
// zero-initialized — which decodes as (varint, float32), i.e. exactly the
// legacy layout, so old index files open unchanged.
constexpr size_t kCodecIdOffset = 64;
constexpr size_t kRankEncodingOffset = 68;
// VBMW block-sizing lambda (PR 7), milli-rank units; zero (also what every
// pre-VBMW file carries) is the dense page-filling layout.
constexpr size_t kVbmwLambdaOffset = 72;
// Lexicon blob layout version (kLexiconFormatVersion). Zero — what every
// pre-versioning file carries in this slot — is the legacy layout without
// per-term max_doc_rank, so old files deserialize unchanged; versions this
// binary does not know are refused at open instead of misparsed.
constexpr size_t kLexFormatVersionOffset = 76;
// Document-reorder pass id (index/reorder.h). Zero — what every pre-reorder
// file carries — is identity/ingest order; unknown ids are refused at open
// exactly like unknown codec ids.
constexpr size_t kReorderIdOffset = 80;

}  // namespace

Result<ListExtent> WriteBlobToPages(storage::PageFile* file,
                                    std::string_view blob) {
  ListExtent extent;
  extent.entry_count = blob.size();
  size_t offset = 0;
  storage::PageId previous = storage::kInvalidPage;
  while (offset < blob.size() || extent.page_count == 0) {
    XRANK_ASSIGN_OR_RETURN(storage::PageId page, file->Allocate());
    if (previous != storage::kInvalidPage && page != previous + 1) {
      return Status::Internal("blob pages not consecutive");
    }
    if (extent.page_count == 0) extent.first_page = page;
    storage::Page page_data{};
    size_t chunk = std::min(blob.size() - offset, storage::kPageSize);
    std::memcpy(page_data.data.data(), blob.data() + offset, chunk);
    XRANK_RETURN_NOT_OK(file->Write(page, page_data));
    offset += chunk;
    previous = page;
    ++extent.page_count;
    if (blob.empty()) break;
  }
  return extent;
}

Result<storage::PageId> AppendScratchPages(storage::PageFile* file,
                                           const storage::PageFile& scratch) {
  storage::PageId offset = file->page_count();
  for (storage::PageId p = 0; p < scratch.page_count(); ++p) {
    storage::Page page;
    XRANK_RETURN_NOT_OK(scratch.Read(p, &page));
    XRANK_ASSIGN_OR_RETURN(storage::PageId dst, file->Allocate());
    if (dst != offset + p) {
      return Status::Internal("scratch splice pages not consecutive");
    }
    XRANK_RETURN_NOT_OK(file->Write(dst, page));
  }
  return offset;
}

Status WriteIndexTrailer(storage::PageFile* file, IndexKind kind,
                         const Lexicon& lexicon, IndexStats* stats) {
  std::string blob;
  lexicon.Serialize(&blob);
  XRANK_ASSIGN_OR_RETURN(ListExtent lex_extent, WriteBlobToPages(file, blob));
  stats->lexicon_pages = lex_extent.page_count;

  storage::Page header{};
  header.WriteU32(kMagicOffset, kIndexMagic);
  header.WriteU32(kKindOffset, static_cast<uint32_t>(kind));
  header.WriteU64(kListPagesOffset, stats->list_pages);
  header.WriteU64(kIndexPagesOffset, stats->index_pages);
  header.WriteU64(kLexiconPagesOffset, stats->lexicon_pages);
  header.WriteU64(kEntryCountOffset, stats->entry_count);
  header.WriteU32(kLexFirstPageOffset, lex_extent.first_page);
  header.WriteU32(kLexPageCountOffset, lex_extent.page_count);
  header.WriteU64(kLexByteLenOffset, blob.size());
  header.WriteU64(kListUsedBytesOffset, stats->list_used_bytes);
  header.WriteU32(kCodecIdOffset, lexicon.format_spec().codec_id);
  header.WriteU32(kRankEncodingOffset,
                  static_cast<uint32_t>(lexicon.format_spec().ranks));
  header.WriteU32(kVbmwLambdaOffset, lexicon.format_spec().vbmw_lambda_milli);
  header.WriteU32(kLexFormatVersionOffset, kLexiconFormatVersion);
  header.WriteU32(kReorderIdOffset, lexicon.format_spec().reorder_id);
  XRANK_RETURN_NOT_OK(file->Write(0, header));
  return file->Sync();
}

Result<BuiltIndex> OpenIndex(std::unique_ptr<storage::PageFile> file) {
  if (file->page_count() == 0) {
    return Status::Corruption("index file is empty");
  }
  storage::Page header;
  XRANK_RETURN_NOT_OK(file->Read(0, &header));
  if (header.ReadU32(kMagicOffset) != kIndexMagic) {
    return Status::Corruption("bad index magic");
  }
  BuiltIndex index;
  uint32_t kind = header.ReadU32(kKindOffset);
  if (kind < 1 || kind > 5) return Status::Corruption("bad index kind");
  index.kind = static_cast<IndexKind>(kind);
  index.stats.list_pages = header.ReadU64(kListPagesOffset);
  index.stats.index_pages = header.ReadU64(kIndexPagesOffset);
  index.stats.lexicon_pages = header.ReadU64(kLexiconPagesOffset);
  index.stats.entry_count = header.ReadU64(kEntryCountOffset);
  index.stats.list_used_bytes = header.ReadU64(kListUsedBytesOffset);

  uint32_t lex_first = header.ReadU32(kLexFirstPageOffset);
  uint32_t lex_pages = header.ReadU32(kLexPageCountOffset);
  uint64_t lex_bytes = header.ReadU64(kLexByteLenOffset);
  if (static_cast<uint64_t>(lex_first) + lex_pages > file->page_count() ||
      lex_bytes > static_cast<uint64_t>(lex_pages) * storage::kPageSize) {
    return Status::Corruption("bad lexicon extent");
  }
  std::string blob;
  blob.reserve(lex_bytes);
  for (uint32_t i = 0; i < lex_pages; ++i) {
    storage::Page page;
    XRANK_RETURN_NOT_OK(file->Read(lex_first + i, &page));
    size_t chunk = std::min(static_cast<size_t>(lex_bytes - blob.size()),
                            storage::kPageSize);
    blob.append(page.data.data(), chunk);
    if (blob.size() == lex_bytes) break;
  }
  PostingFormatSpec spec;
  spec.codec_id = header.ReadU32(kCodecIdOffset);
  spec.ranks = static_cast<RankEncoding>(header.ReadU32(kRankEncodingOffset));
  spec.vbmw_lambda_milli = header.ReadU32(kVbmwLambdaOffset);
  spec.reorder_id = header.ReadU32(kReorderIdOffset);
  // Refuse cleanly rather than misdecode: an index written by a build with
  // codecs this binary does not register must not be served.
  XRANK_RETURN_NOT_OK(ResolvePostingCodec(spec).status());
  uint32_t lex_version = header.ReadU32(kLexFormatVersionOffset);
  if (lex_version > kLexiconFormatVersion) {
    return Status::Corruption(
        "lexicon format version " + std::to_string(lex_version) +
        " is newer than this build supports (" +
        std::to_string(kLexiconFormatVersion) + ")");
  }
  XRANK_ASSIGN_OR_RETURN(index.lexicon,
                         Lexicon::Deserialize(blob, spec, lex_version));
  index.file = std::move(file);
  return index;
}

}  // namespace xrank::index
