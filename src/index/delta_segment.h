#ifndef XRANK_INDEX_DELTA_SEGMENT_H_
#define XRANK_INDEX_DELTA_SEGMENT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "index/index_builder.h"
#include "index/manifest.h"
#include "rank/elem_rank.h"
#include "storage/buffer_pool.h"
#include "storage/cost_model.h"
#include "storage/wal.h"

namespace xrank::index {

// Configuration shared by every live segment an engine builds or reopens.
// Mirrors the engine options that shape the base index, so a segment's
// postings are extracted and encoded exactly like the base corpus's.
struct LiveSegmentOptions {
  graph::BuilderOptions graph;
  rank::ElemRankOptions elem_rank;
  ExtractionOptions extraction;
  BuildOptions build;
  storage::CostModelOptions cost;
  // Segments are small; a few hundred pool pages cover them.
  size_t buffer_pool_pages = 256;
  size_t buffer_pool_shards = 0;
};

// One segment of the live-update path (LSM-style index maintenance): a
// self-contained DIL index over the documents added after the base build.
// The in-memory mutable delta and the immutable flushed segments share this
// representation — the only difference is whether `built.file` is an
// in-memory page file (delta) or a committed on-disk one (flushed).
//
// Document ids are local (the first Dewey component of every id in `graph`
// and in query results is the segment-local index 0..doc_count-1); the
// engine rebases them by `doc_base` into the global document-id space that
// continues past the base corpus.
//
// Ranking: every document's ElemRank is computed over that document's graph
// ALONE (per-document ElemRank), not over the growing collection. This is
// the approximation that makes live updates cheap and — more importantly —
// makes query results invariant under regrouping: flushing the delta into a
// segment or merging segments in a compaction cannot change any element's
// rank, because no rank ever depended on which segment its document lives
// in. The price is that inter-document link endorsements and the global
// 1/N normalization are ignored for live-added documents; an offline full
// rebuild (XRankEngine::Build over the complete corpus) restores exact
// global ElemRanks.
//
// A LiveSegment is immutable after construction; the engine publishes it
// behind shared_ptr snapshots, so queries pin whole segment sets by
// refcount and never observe a partially swapped state.
struct LiveSegment {
  // The kAddDocument WAL records this segment covers, in seq order; local
  // document i is sources[i].
  std::vector<storage::LogRecord> sources;
  graph::XmlGraph graph;            // local document ids 0..doc_count-1
  std::vector<double> elem_ranks;   // per-document ElemRank, concatenated
  BuiltIndex built;                 // always IndexKind::kDil
  std::unique_ptr<storage::CostModel> cost_model;
  std::unique_ptr<storage::BufferPool> pool;
  uint32_t doc_base = 0;   // global id of local document 0
  uint64_t first_seq = 0;  // WAL seq range covered, inclusive
  uint64_t last_seq = 0;

  uint32_t doc_count() const {
    return static_cast<uint32_t>(sources.size());
  }
  bool ContainsGlobalDoc(uint32_t global_doc) const {
    return global_doc >= doc_base && global_doc - doc_base < doc_count();
  }
  // Local index of the document with this URI, if present.
  std::optional<uint32_t> FindUri(std::string_view uri) const;
};

// Builds a segment over `sources` (kAddDocument records in ascending seq
// order, each body a complete XML document). `file` receives the DIL index:
// an in-memory page file for the mutable delta, an on-disk `.tmp` file for
// a flush. Parses every body, computes per-document ElemRanks, verifies
// that the combined graph's node numbering aligns with the concatenated
// per-document rank vectors, and encodes the postings.
Result<std::shared_ptr<LiveSegment>> BuildLiveSegment(
    std::vector<storage::LogRecord> sources, uint32_t doc_base,
    const LiveSegmentOptions& options,
    std::unique_ptr<storage::PageFile> file);

// Reopens a flushed segment committed in the MANIFEST: reads the `.docs`
// source log (refusing any damage — a committed docs file never has a legal
// torn tail), re-derives the graph and per-document ranks in memory, and
// opens the committed index page file as-is. With `verify`, both files are
// checksummed against the manifest entry first.
Result<std::shared_ptr<LiveSegment>> OpenLiveSegment(
    const std::string& dir, const SegmentManifestEntry& entry,
    const LiveSegmentOptions& options, bool verify);

}  // namespace xrank::index

#endif  // XRANK_INDEX_DELTA_SEGMENT_H_
