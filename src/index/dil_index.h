#ifndef XRANK_INDEX_DIL_INDEX_H_
#define XRANK_INDEX_DIL_INDEX_H_

#include <memory>

#include "index/index_builder.h"

namespace xrank::index {

// Builds the Dewey Inverted List (paper Section 4.2): per term, the postings
// of elements that directly contain the term, sorted by Dewey ID,
// prefix-delta compressed within pages. No auxiliary index. List encoding is
// parallelized across contiguous term shards (see BuildOptions); the output
// file is byte-identical for every thread count.
Result<BuiltIndex> BuildDilIndex(const TermPostingsMap& dewey_postings,
                                 std::unique_ptr<storage::PageFile> file,
                                 const BuildOptions& build = {});

}  // namespace xrank::index

#endif  // XRANK_INDEX_DIL_INDEX_H_
