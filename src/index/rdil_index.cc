#include "index/rdil_index.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "storage/btree.h"

namespace xrank::index {

namespace {

// One worker's output for a contiguous term shard: the rank-ordered lists
// in a scratch page file plus the staged B+-tree loads (posting locations
// are relative to each list's page run, so they need no rebasing).
struct RdilShardOutput {
  std::unique_ptr<storage::PageFile> scratch;
  std::vector<ListExtent> extents;  // one per term, shard order
  std::vector<std::vector<std::pair<dewey::DeweyId, uint64_t>>> tree_entries;
  std::vector<float> rank_scales;  // per-term quantization scale
  Status status = Status::OK();
};

Status EncodeRdilShard(
    const std::vector<const TermPostingsMap::value_type*>& terms,
    size_t begin, size_t end, const PostingCodec* codec,
    const PostingFormatSpec& spec, RdilShardOutput* out) {
  out->scratch = storage::PageFile::CreateInMemory();
  out->extents.reserve(end - begin);
  out->tree_entries.reserve(end - begin);
  out->rank_scales.reserve(end - begin);
  for (size_t t = begin; t < end; ++t) {
    const std::vector<Posting>& postings = terms[t]->second;
    // Sort by descending ElemRank; ties broken by Dewey ID so builds are
    // deterministic.
    std::vector<const Posting*> by_rank;
    by_rank.reserve(postings.size());
    for (const Posting& posting : postings) by_rank.push_back(&posting);
    std::sort(by_rank.begin(), by_rank.end(),
              [](const Posting* a, const Posting* b) {
                if (a->elem_rank != b->elem_rank) {
                  return a->elem_rank > b->elem_rank;
                }
                return a->id < b->id;
              });

    // Rank order destroys prefix locality, so IDs are stored raw.
    PostingFormat format = MakeWriterFormat(codec, spec, postings,
                                            /*delta_encode_ids=*/false);
    PostingListWriter writer(out->scratch.get(), format);
    std::vector<std::pair<dewey::DeweyId, uint64_t>> entries;
    entries.reserve(postings.size());
    for (const Posting* posting : by_rank) {
      XRANK_ASSIGN_OR_RETURN(PostingLocation loc, writer.Add(*posting));
      entries.emplace_back(posting->id, EncodePostingLocation(loc));
    }
    XRANK_ASSIGN_OR_RETURN(ListExtent extent, writer.Finish());
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out->extents.push_back(extent);
    out->tree_entries.push_back(std::move(entries));
    out->rank_scales.push_back(format.rank_scale);
  }
  return Status::OK();
}

}  // namespace

Result<BuiltIndex> BuildRdilIndex(const TermPostingsMap& dewey_postings,
                                  std::unique_ptr<storage::PageFile> file,
                                  const BuildOptions& build) {
  BuiltIndex index;
  index.kind = IndexKind::kRdil;
  XRANK_ASSIGN_OR_RETURN(const PostingCodec* codec,
                         ResolvePostingCodec(build.format));
  XRANK_RETURN_NOT_OK(index.lexicon.SetFormatSpec(build.format));
  XRANK_ASSIGN_OR_RETURN(storage::PageId header_page, file->Allocate());
  if (header_page != 0) return Status::Internal("header page must be 0");

  std::vector<const TermPostingsMap::value_type*> terms;
  terms.reserve(dewey_postings.size());
  std::vector<uint64_t> weights;
  weights.reserve(dewey_postings.size());
  for (const auto& entry : dewey_postings) {
    terms.push_back(&entry);
    weights.push_back(entry.second.size() + 1);
  }

  // Phase 1: the rank-ordered lists. Lists must occupy consecutive pages,
  // so workers encode complete per-term page runs into scratch files and
  // the coordinator splices them back in term order.
  size_t num_workers =
      std::min(ResolveBuildThreads(build.num_threads), terms.size());
  std::vector<std::pair<size_t, size_t>> shards =
      PartitionByWeight(weights, std::max<size_t>(num_workers, 1));

  std::vector<RdilShardOutput> outputs(shards.size());
  if (num_workers <= 1) {
    for (size_t s = 0; s < shards.size(); ++s) {
      outputs[s].status =
          EncodeRdilShard(terms, shards[s].first, shards[s].second, codec,
                          build.format, &outputs[s]);
    }
  } else {
    ThreadPool pool(static_cast<int>(num_workers));
    pool.ParallelFor(0, shards.size(), 1,
                     [&](size_t begin, size_t end, size_t) {
                       for (size_t s = begin; s < end; ++s) {
                         outputs[s].status = EncodeRdilShard(
                             terms, shards[s].first, shards[s].second, codec,
                             build.format, &outputs[s]);
                       }
                     });
  }

  for (size_t s = 0; s < shards.size(); ++s) {
    XRANK_RETURN_NOT_OK(outputs[s].status);
    XRANK_ASSIGN_OR_RETURN(storage::PageId offset,
                           AppendScratchPages(file.get(), *outputs[s].scratch));
    for (size_t i = 0; i < outputs[s].extents.size(); ++i) {
      ListExtent extent = outputs[s].extents[i];
      if (extent.page_count > 0) extent.first_page += offset;
      index.stats.list_pages += extent.page_count;
      index.stats.list_used_bytes += extent.byte_count;
      index.stats.entry_count += extent.entry_count;
      TermInfo info;
      info.list = extent;
      info.rank_scale = outputs[s].rank_scales[i];
      index.lexicon.Add(terms[shards[s].first + i]->first, info);
    }
  }

  // Phase 2: one dense B+-tree per term, keyed by Dewey ID. Short trees
  // share pages through the packer; tree loads allocate absolute page
  // pointers, so this phase stays on the coordinator.
  uint32_t index_pages_before = file->page_count();
  storage::SharedPagePacker packer(file.get());
  for (size_t s = 0; s < shards.size(); ++s) {
    for (size_t i = 0; i < outputs[s].tree_entries.size(); ++i) {
      storage::BtreeBuilder builder(file.get(), &packer);
      for (const auto& [id, value] : outputs[s].tree_entries[i]) {
        XRANK_RETURN_NOT_OK(builder.Add(id, value));
      }
      XRANK_ASSIGN_OR_RETURN(storage::BtreeBuilder::BuildStats tree_stats,
                             builder.Finish());
      const std::string& term = terms[shards[s].first + i]->first;
      const TermInfo* existing = index.lexicon.Find(term);
      TermInfo info = *existing;
      info.btree_root = tree_stats.root;
      index.lexicon.Add(term, info);
    }
  }
  index.stats.index_pages = file->page_count() - index_pages_before;

  XRANK_RETURN_NOT_OK(WriteIndexTrailer(file.get(), IndexKind::kRdil,
                                        index.lexicon, &index.stats));
  index.file = std::move(file);
  return index;
}

}  // namespace xrank::index
