#include "index/rdil_index.h"

#include <algorithm>

#include "storage/btree.h"

namespace xrank::index {

Result<BuiltIndex> BuildRdilIndex(const TermPostingsMap& dewey_postings,
                                  std::unique_ptr<storage::PageFile> file) {
  BuiltIndex index;
  index.kind = IndexKind::kRdil;
  XRANK_ASSIGN_OR_RETURN(storage::PageId header_page, file->Allocate());
  if (header_page != 0) return Status::Internal("header page must be 0");

  // Phase 1: the rank-ordered lists. Lists must occupy consecutive pages,
  // so each term's list is written completely before the next; B+-tree
  // loads are staged until phase 2.
  struct StagedTree {
    std::string term;
    std::vector<std::pair<dewey::DeweyId, uint64_t>> entries;  // id -> loc
  };
  std::vector<StagedTree> staged;

  for (const auto& [term, postings] : dewey_postings) {
    // Sort by descending ElemRank; ties broken by Dewey ID so builds are
    // deterministic.
    std::vector<const Posting*> by_rank;
    by_rank.reserve(postings.size());
    for (const Posting& posting : postings) by_rank.push_back(&posting);
    std::sort(by_rank.begin(), by_rank.end(),
              [](const Posting* a, const Posting* b) {
                if (a->elem_rank != b->elem_rank) {
                  return a->elem_rank > b->elem_rank;
                }
                return a->id < b->id;
              });

    // Rank order destroys prefix locality, so IDs are stored raw.
    PostingListWriter writer(file.get(), /*delta_encode_ids=*/false);
    StagedTree tree;
    tree.term = term;
    tree.entries.reserve(postings.size());
    for (const Posting* posting : by_rank) {
      XRANK_ASSIGN_OR_RETURN(PostingLocation loc, writer.Add(*posting));
      tree.entries.emplace_back(posting->id, EncodePostingLocation(loc));
    }
    XRANK_ASSIGN_OR_RETURN(ListExtent extent, writer.Finish());
    index.stats.list_pages += extent.page_count;
    index.stats.list_used_bytes += extent.byte_count;
    index.stats.entry_count += extent.entry_count;
    TermInfo info;
    info.list = extent;
    index.lexicon.Add(term, info);

    std::sort(tree.entries.begin(), tree.entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    staged.push_back(std::move(tree));
  }

  // Phase 2: one dense B+-tree per term, keyed by Dewey ID. Short trees
  // share pages through the packer.
  uint32_t index_pages_before = file->page_count();
  storage::SharedPagePacker packer(file.get());
  for (StagedTree& tree : staged) {
    storage::BtreeBuilder builder(file.get(), &packer);
    for (const auto& [id, value] : tree.entries) {
      XRANK_RETURN_NOT_OK(builder.Add(id, value));
    }
    XRANK_ASSIGN_OR_RETURN(storage::BtreeBuilder::BuildStats tree_stats,
                           builder.Finish());
    const TermInfo* existing = index.lexicon.Find(tree.term);
    TermInfo info = *existing;
    info.btree_root = tree_stats.root;
    index.lexicon.Add(tree.term, info);
  }
  index.stats.index_pages = file->page_count() - index_pages_before;

  XRANK_RETURN_NOT_OK(WriteIndexTrailer(file.get(), IndexKind::kRdil,
                                        index.lexicon, &index.stats));
  index.file = std::move(file);
  return index;
}

}  // namespace xrank::index
