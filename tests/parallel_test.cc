// Tests for the parallel execution layer: the ThreadPool primitive,
// thread-count invariance of parallel ElemRank, byte-identity of parallel
// index construction, and thread safety of concurrent query serving.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/engine.h"
#include "datagen/dblp_gen.h"
#include "datagen/xmark_gen.h"
#include "graph/builder.h"
#include "index/dil_index.h"
#include "index/hdil_index.h"
#include "index/index_builder.h"
#include "index/rdil_index.h"
#include "rank/elem_rank.h"

namespace xrank {
namespace {

using core::EngineOptions;
using core::XRankEngine;
using index::IndexKind;

// --- ThreadPool ---

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.ParallelFor(0, hits.size(), 64,
                     [&](size_t begin, size_t end, size_t) {
                       for (size_t i = begin; i < end; ++i) {
                         hits[i].fetch_add(1);
                       }
                     });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ChunkBoundariesDependOnlyOnGrain) {
  // Chunk shapes must be identical for every thread count: per-chunk
  // partial results combined in chunk order are then reproducible.
  constexpr size_t kBegin = 3, kEnd = 777, kGrain = 50;
  auto collect = [&](int threads) {
    ThreadPool pool(threads);
    size_t chunks = ThreadPool::NumChunks(kBegin, kEnd, kGrain);
    std::vector<std::pair<size_t, size_t>> bounds(chunks);
    pool.ParallelFor(kBegin, kEnd, kGrain,
                     [&](size_t begin, size_t end, size_t chunk) {
                       bounds[chunk] = {begin, end};
                     });
    return bounds;
  };
  auto one = collect(1);
  auto four = collect(4);
  ASSERT_EQ(one.size(), four.size());
  for (size_t c = 0; c < one.size(); ++c) {
    EXPECT_EQ(one[c], four[c]) << "chunk " << c;
  }
  // Chunks tile [begin, end) in order.
  size_t expected_begin = kBegin;
  for (const auto& [begin, end] : one) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_LE(end - begin, kGrain);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, kEnd);
}

TEST(ThreadPoolTest, EmptyRangeAndZeroGrain) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, 10, [&](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // Grain 0 = split evenly across workers.
  std::atomic<size_t> total{0};
  pool.ParallelFor(0, 100, 0, [&](size_t begin, size_t end, size_t) {
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 100u);
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(0, 1000, 7, [&](size_t begin, size_t end, size_t) {
      uint64_t local = 0;
      for (size_t i = begin; i < end; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 999u * 1000u / 2u);
  }
}

// --- parallel ElemRank ---

graph::XmlGraph BuildGraph(std::vector<xml::Document> docs) {
  graph::GraphBuilder builder;
  for (const xml::Document& doc : docs) {
    Status status = builder.AddDocument(doc);
    EXPECT_TRUE(status.ok()) << status;
  }
  auto graph = std::move(builder).Finalize();
  EXPECT_TRUE(graph.ok()) << graph.status();
  return std::move(graph).value();
}

graph::XmlGraph SmallDblpGraph() {
  datagen::DblpOptions gen;
  gen.num_papers = 150;
  return BuildGraph(datagen::GenerateDblp(gen).documents);
}

graph::XmlGraph SmallXMarkGraph() {
  datagen::XMarkOptions gen;
  gen.num_items = 60;
  gen.num_open_auctions = 40;
  gen.num_closed_auctions = 20;
  gen.num_people = 30;
  return BuildGraph(datagen::GenerateXMark(gen).documents);
}

class ElemRankParallelTest
    : public ::testing::TestWithParam<rank::Formula> {};

TEST_P(ElemRankParallelTest, MatchesSequentialWithinTolerance) {
  for (const graph::XmlGraph& graph : {SmallDblpGraph(), SmallXMarkGraph()}) {
    rank::ElemRankOptions sequential;
    sequential.formula = GetParam();
    sequential.num_threads = 1;
    auto reference = rank::ComputeElemRank(graph, sequential);
    ASSERT_TRUE(reference.ok()) << reference.status();

    for (int threads : {2, 4}) {
      rank::ElemRankOptions parallel = sequential;
      parallel.num_threads = threads;
      auto result = rank::ComputeElemRank(graph, parallel);
      ASSERT_TRUE(result.ok()) << result.status();
      ASSERT_EQ(result->ranks.size(), reference->ranks.size());
      double linf = 0.0;
      for (size_t i = 0; i < result->ranks.size(); ++i) {
        linf = std::max(linf,
                        std::abs(result->ranks[i] - reference->ranks[i]));
      }
      EXPECT_LE(linf, 1e-9) << "threads=" << threads;
      EXPECT_EQ(result->iterations, reference->iterations)
          << "threads=" << threads;
    }
  }
}

TEST_P(ElemRankParallelTest, ThreadCountInvariant) {
  // The pull-style path must produce bit-identical ranks for every thread
  // count (fixed chunking; partials combined in chunk order).
  graph::XmlGraph graph = SmallDblpGraph();
  rank::ElemRankOptions two;
  two.formula = GetParam();
  two.num_threads = 2;
  auto a = rank::ComputeElemRank(graph, two);
  ASSERT_TRUE(a.ok()) << a.status();
  rank::ElemRankOptions eight = two;
  eight.num_threads = 8;
  auto b = rank::ComputeElemRank(graph, eight);
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_EQ(a->ranks.size(), b->ranks.size());
  for (size_t i = 0; i < a->ranks.size(); ++i) {
    EXPECT_EQ(a->ranks[i], b->ranks[i]) << "node " << i;
  }
}

TEST(ElemRankParallelTest, RejectsNegativeThreadCount) {
  graph::XmlGraph graph = SmallDblpGraph();
  rank::ElemRankOptions options;
  options.num_threads = -1;
  auto result = rank::ComputeElemRank(graph, options);
  EXPECT_FALSE(result.ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllFormulas, ElemRankParallelTest,
    ::testing::Values(rank::Formula::kPageRankAdaptation,
                      rank::Formula::kBidirectional,
                      rank::Formula::kDiscriminated, rank::Formula::kFinal));

// --- parallel extraction and index construction ---

index::ExtractionResult Extract(const graph::XmlGraph& graph,
                                const std::vector<double>& ranks,
                                int num_threads) {
  index::ExtractionOptions options;
  options.num_threads = num_threads;
  auto extracted = index::ExtractPostings(graph, ranks, options);
  EXPECT_TRUE(extracted.ok()) << extracted.status();
  return std::move(extracted).value();
}

TEST(ParallelBuildTest, ExtractionIsThreadCountInvariant) {
  graph::XmlGraph graph = SmallDblpGraph();
  rank::ElemRankOptions rank_options;
  auto ranks = rank::ComputeElemRank(graph, rank_options);
  ASSERT_TRUE(ranks.ok()) << ranks.status();

  index::ExtractionResult reference = Extract(graph, ranks->ranks, 1);
  for (int threads : {2, 4}) {
    index::ExtractionResult parallel = Extract(graph, ranks->ranks, threads);
    EXPECT_EQ(parallel.element_count, reference.element_count);
    EXPECT_EQ(parallel.direct_occurrence_count,
              reference.direct_occurrence_count);
    EXPECT_EQ(parallel.ordinal_to_dewey, reference.ordinal_to_dewey);
    EXPECT_EQ(parallel.dewey_postings, reference.dewey_postings)
        << "threads=" << threads;
    EXPECT_EQ(parallel.naive_postings, reference.naive_postings)
        << "threads=" << threads;
  }
}

void ExpectFilesIdentical(const storage::PageFile& a,
                          const storage::PageFile& b, const char* label) {
  ASSERT_EQ(a.page_count(), b.page_count()) << label;
  for (uint32_t p = 0; p < a.page_count(); ++p) {
    storage::Page page_a, page_b;
    ASSERT_TRUE(a.Read(p, &page_a).ok());
    ASSERT_TRUE(b.Read(p, &page_b).ok());
    ASSERT_EQ(std::memcmp(page_a.data.data(), page_b.data.data(),
                          storage::kPageSize),
              0)
        << label << ": page " << p << " differs";
  }
}

TEST(ParallelBuildTest, IndexFilesAreByteIdentical) {
  graph::XmlGraph graph = SmallDblpGraph();
  rank::ElemRankOptions rank_options;
  auto ranks = rank::ComputeElemRank(graph, rank_options);
  ASSERT_TRUE(ranks.ok()) << ranks.status();
  index::ExtractionResult extracted = Extract(graph, ranks->ranks, 1);

  index::BuildOptions sequential;
  sequential.num_threads = 1;
  for (int threads : {2, 4}) {
    index::BuildOptions parallel;
    parallel.num_threads = threads;

    auto dil_seq = index::BuildDilIndex(extracted.dewey_postings,
                                        storage::PageFile::CreateInMemory(),
                                        sequential);
    auto dil_par = index::BuildDilIndex(extracted.dewey_postings,
                                        storage::PageFile::CreateInMemory(),
                                        parallel);
    ASSERT_TRUE(dil_seq.ok() && dil_par.ok());
    ExpectFilesIdentical(*dil_seq->file, *dil_par->file, "DIL");

    auto rdil_seq = index::BuildRdilIndex(extracted.dewey_postings,
                                          storage::PageFile::CreateInMemory(),
                                          sequential);
    auto rdil_par = index::BuildRdilIndex(extracted.dewey_postings,
                                          storage::PageFile::CreateInMemory(),
                                          parallel);
    ASSERT_TRUE(rdil_seq.ok() && rdil_par.ok());
    ExpectFilesIdentical(*rdil_seq->file, *rdil_par->file, "RDIL");

    auto hdil_seq = index::BuildHdilIndex(extracted.dewey_postings,
                                          storage::PageFile::CreateInMemory(),
                                          {}, sequential);
    auto hdil_par = index::BuildHdilIndex(extracted.dewey_postings,
                                          storage::PageFile::CreateInMemory(),
                                          {}, parallel);
    ASSERT_TRUE(hdil_seq.ok() && hdil_par.ok());
    ExpectFilesIdentical(*hdil_seq->file, *hdil_par->file, "HDIL");
  }
}

TEST(ParallelBuildTest, PartitionByWeightCoversAllItems) {
  std::vector<uint64_t> weights = {5, 1, 1, 1, 20, 1, 1, 3, 3, 3};
  for (size_t shards : {1u, 2u, 3u, 7u, 10u, 25u}) {
    auto partition = index::PartitionByWeight(weights, shards);
    ASSERT_FALSE(partition.empty());
    EXPECT_LE(partition.size(), std::min<size_t>(shards, weights.size()));
    size_t expected_begin = 0;
    for (const auto& [begin, end] : partition) {
      EXPECT_EQ(begin, expected_begin);
      EXPECT_LT(begin, end);
      expected_begin = end;
    }
    EXPECT_EQ(expected_begin, weights.size());
  }
}

// --- concurrent query serving ---

TEST(ConcurrentQueryTest, ManyThreadsMatchSequentialAnswers) {
  datagen::DblpOptions gen;
  gen.num_papers = 120;
  datagen::Corpus corpus = datagen::GenerateDblp(gen);

  EngineOptions options;
  options.indexes = {IndexKind::kDil, IndexKind::kHdil};
  auto built = XRankEngine::Build(std::move(corpus.documents), options);
  ASSERT_TRUE(built.ok()) << built.status();
  XRankEngine* engine = built->get();

  // Query set: prefixes of the planted quadruples over both index kinds.
  struct QueryCase {
    std::vector<std::string> keywords;
    IndexKind kind;
  };
  std::vector<QueryCase> cases;
  for (const auto& quad : corpus.planted.high_correlation) {
    for (size_t n = 1; n <= 2; ++n) {
      cases.push_back({{quad.begin(), quad.begin() + n}, IndexKind::kDil});
      cases.push_back({{quad.begin(), quad.begin() + n}, IndexKind::kHdil});
    }
    if (cases.size() >= 16) break;
  }
  ASSERT_FALSE(cases.empty());

  // Sequential reference answers.
  std::vector<core::EngineResponse> expected;
  for (const QueryCase& c : cases) {
    auto response = engine->QueryKeywords(c.keywords, 10, c.kind);
    ASSERT_TRUE(response.ok()) << response.status();
    expected.push_back(std::move(response).value());
  }

  // Hammer the engine from 8 threads; every thread runs the whole set and
  // must see exactly the sequential answers.
  constexpr int kThreads = 8;
  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t rep = 0; rep < 3; ++rep) {
        for (size_t i = 0; i < cases.size(); ++i) {
          // Stagger the starting offset so threads hit different queries
          // at the same time.
          size_t q = (i + static_cast<size_t>(t)) % cases.size();
          auto response =
              engine->QueryKeywords(cases[q].keywords, 10, cases[q].kind);
          if (!response.ok()) {
            errors[t] = response.status().ToString();
            return;
          }
          if (response->results.size() != expected[q].results.size()) {
            errors[t] = "result count mismatch on query " + std::to_string(q);
            return;
          }
          for (size_t r = 0; r < response->results.size(); ++r) {
            if (response->results[r].id != expected[q].results[r].id ||
                response->results[r].rank != expected[q].results[r].rank) {
              errors[t] = "result mismatch on query " + std::to_string(q);
              return;
            }
          }
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(errors[t].empty()) << "thread " << t << ": " << errors[t];
  }
}

TEST(ConcurrentQueryTest, QueriesRaceSafelyWithDeletions) {
  datagen::DblpOptions gen;
  gen.num_papers = 60;
  datagen::Corpus corpus = datagen::GenerateDblp(gen);
  std::vector<std::string> uris;
  for (const xml::Document& doc : corpus.documents) uris.push_back(doc.uri);

  EngineOptions options;
  auto built = XRankEngine::Build(std::move(corpus.documents), options);
  ASSERT_TRUE(built.ok()) << built.status();
  XRankEngine* engine = built->get();

  const auto& quad = corpus.planted.high_correlation[0];
  std::vector<std::string> keywords = {quad[0], quad[1]};

  // Readers run a bounded number of queries (an unbounded spin can starve
  // the writer on reader-preferring rwlock implementations); the writer
  // tombstones documents and compacts concurrently.
  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      for (int q = 0; q < 40; ++q) {
        auto response =
            engine->QueryKeywords(keywords, 10, IndexKind::kHdil);
        if (!response.ok()) failures.fetch_add(1);
      }
    });
  }
  for (size_t d = 0; d < 4; ++d) {
    ASSERT_TRUE(engine->DeleteDocument(uris[d * 7]).ok());
  }
  ASSERT_TRUE(engine->CompactDeletions().ok());
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0u);
  // The tombstone set survives compaction (it keeps filtering, harmlessly,
  // since the postings are gone).
  EXPECT_EQ(engine->deleted_document_count(), 4u);
}

}  // namespace
}  // namespace xrank
