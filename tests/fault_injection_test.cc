// Failpoint-driven fault injection across the storage, commit, and serving
// layers: every injected fault must surface as a clean Status (or be
// absorbed by the bounded retry policy) — never a crash, hang, or silently
// wrong result. Also covers the crash-safe MANIFEST commit protocol and
// per-query deadlines / cooperative cancellation.

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/backoff.h"
#include "common/failpoint.h"
#include "core/engine.h"
#include "index/manifest.h"
#include "query/deadline.h"
#include "storage/fault_injection.h"
#include "storage/page_file.h"
#include "xml/parser.h"

namespace xrank {
namespace {

using core::EngineOptions;
using core::XRankEngine;
using fail::Action;
using fail::FailPoints;
using fail::FailPointSpec;
using fail::ScopedFailPoint;
using index::IndexKind;

constexpr const char* kCorpusXml = R"(
<workshop date="28 July 2000">
  <title> XML and IR: A SIGIR 2000 Workshop </title>
  <proceedings>
    <paper id="1">
      <title> XQL and Proximal Nodes </title>
      <abstract> We consider the recently proposed language </abstract>
      <body>
        <section> Searching on structured text with the XQL language </section>
        <cite ref="2">Querying XML in Xyleme</cite>
      </body>
    </paper>
    <paper id="2">
      <title> Querying XML in Xyleme </title>
      <body> xyleme supports XQL language fragments </body>
    </paper>
  </proceedings>
</workshop>
)";

constexpr const char* kSecondXml = R"(
<note>
  <title> ranked keyword search over hyperlinked documents </title>
  <body> the xql language again </body>
</note>
)";

std::vector<xml::Document> Corpus() {
  std::vector<xml::Document> docs;
  for (const auto& [text, uri] :
       {std::pair{kCorpusXml, "corpus.xml"},
        std::pair{kSecondXml, "second.xml"}}) {
    auto doc = xml::ParseDocument(text, uri);
    EXPECT_TRUE(doc.ok()) << doc.status();
    docs.push_back(std::move(doc).value());
  }
  return docs;
}

// A unique, empty directory under the test temp root.
std::string FreshDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "/fi_" + name;
  ::mkdir(dir.c_str(), 0755);
  // Clear any leftovers from a previous run of the same test.
  for (const char* file :
       {"MANIFEST", "MANIFEST.tmp", "DIL.xrank", "DIL.xrank.tmp",
        "RDIL.xrank", "RDIL.xrank.tmp", "HDIL.xrank", "HDIL.xrank.tmp",
        "NaiveId.xrank", "NaiveId.xrank.tmp", "NaiveRank.xrank",
        "NaiveRank.xrank.tmp"}) {
    std::remove((dir + "/" + file).c_str());
  }
  return dir;
}

EngineOptions DiskOptions(const std::string& dir) {
  EngineOptions options;
  options.indexes = {IndexKind::kDil, IndexKind::kHdil};
  options.disk_dir = dir;
  // The result cache would mask injected read faults on repeat queries.
  options.result_cache_entries = 0;
  return options;
}

// Every test in this file must leave the global registry clean.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::Instance().DisarmAll(); }
};

// --- failpoint registry ---

TEST_F(FaultInjectionTest, UnarmedPointNeverFires) {
  EXPECT_FALSE(FailPoints::Instance().Evaluate("no.such.point").has_value());
}

TEST_F(FaultInjectionTest, ScriptedSkipAndMaxTriggers) {
  FailPointSpec spec;
  spec.skip = 2;
  spec.max_triggers = 3;
  ScopedFailPoint fp("test.scripted", spec);
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) {
    fired.push_back(FailPoints::Instance().Evaluate("test.scripted")
                        .has_value());
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, true, false,
                                      false, false}));
  EXPECT_EQ(fp.hits(), 8u);
  EXPECT_EQ(fp.triggers(), 3u);
}

TEST_F(FaultInjectionTest, ProbabilisticScheduleIsReproducible) {
  FailPointSpec spec;
  spec.probability = 0.5;
  spec.seed = 42;
  auto sample = [&]() {
    ScopedFailPoint fp("test.prob", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(FailPoints::Instance().Evaluate("test.prob")
                          .has_value());
    }
    return fired;
  };
  std::vector<bool> first = sample();
  std::vector<bool> second = sample();
  EXPECT_EQ(first, second);  // re-arming resets the seeded RNG
  size_t triggered = 0;
  for (bool b : first) triggered += b ? 1 : 0;
  EXPECT_GT(triggered, 16u);
  EXPECT_LT(triggered, 48u);
}

TEST_F(FaultInjectionTest, ScopedFailPointDisarmsOnExit) {
  {
    ScopedFailPoint fp("test.scoped", FailPointSpec{});
    EXPECT_TRUE(FailPoints::Instance().Evaluate("test.scoped").has_value());
  }
  EXPECT_FALSE(FailPoints::Instance().Evaluate("test.scoped").has_value());
}

// --- retry with backoff ---

TEST_F(FaultInjectionTest, BackoffRetriesTransientsThenSucceeds) {
  BackoffPolicy policy;
  policy.initial_delay = std::chrono::microseconds(1);
  int attempts = 0;
  Status status = RetryWithBackoff(policy, [&] {
    ++attempts;
    if (attempts < 3) return Status::IOError("transient");
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(attempts, 3);
}

TEST_F(FaultInjectionTest, BackoffDoesNotRetryDeterministicErrors) {
  BackoffPolicy policy;
  policy.initial_delay = std::chrono::microseconds(1);
  int attempts = 0;
  Status status = RetryWithBackoff(policy, [&] {
    ++attempts;
    return Status::Corruption("checksum mismatch");
  });
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(attempts, 1);
}

TEST_F(FaultInjectionTest, BackoffGivesUpAfterMaxAttempts) {
  BackoffPolicy policy;
  policy.max_attempts = 3;
  policy.initial_delay = std::chrono::microseconds(1);
  int attempts = 0;
  Status status = RetryWithBackoff(policy, [&] {
    ++attempts;
    return Status::IOError("persistent");
  });
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(attempts, 3);
}

// --- disk page file: checksums, retries, injected write damage ---

TEST_F(FaultInjectionTest, DiskRetryAbsorbsTransientReadErrors) {
  std::string path = FreshDir("disk_retry") + "/t.xrank";
  auto file = storage::PageFile::CreateOnDisk(path);
  ASSERT_TRUE(file.ok()) << file.status();
  ASSERT_TRUE((*file)->Allocate().ok());
  storage::Page page{};
  page.WriteU32(0, 0xFEEDBEEF);
  ASSERT_TRUE((*file)->Write(0, page).ok());

  FailPointSpec spec;
  spec.max_triggers = 2;  // fewer than the retry budget
  ScopedFailPoint fp("page_file.read", spec);
  storage::Page out{};
  EXPECT_TRUE((*file)->Read(0, &out).ok());
  EXPECT_EQ(out.ReadU32(0), 0xFEEDBEEFu);
  EXPECT_EQ(fp.triggers(), 2u);  // both transients were absorbed
}

TEST_F(FaultInjectionTest, DiskPersistentReadErrorFailsCleanly) {
  std::string path = FreshDir("disk_persist") + "/t.xrank";
  auto file = storage::PageFile::CreateOnDisk(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Allocate().ok());

  ScopedFailPoint fp("page_file.read", FailPointSpec{});  // unlimited
  storage::Page out{};
  Status status = (*file)->Read(0, &out);
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_GT(fp.triggers(), 1u);  // the retry loop tried more than once
}

TEST_F(FaultInjectionTest, SilentlyCorruptedWriteIsCaughtOnRead) {
  std::string path = FreshDir("disk_corrupt") + "/t.xrank";
  auto file = storage::PageFile::CreateOnDisk(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Allocate().ok());

  storage::Page page{};
  page.WriteU32(0, 123);
  {
    FailPointSpec spec;
    spec.max_triggers = 1;
    ScopedFailPoint fp("page_file.corrupt_write", spec);
    ASSERT_TRUE((*file)->Write(0, page).ok());  // the damage is silent
  }
  storage::Page out{};
  Status status = (*file)->Read(0, &out);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("checksum mismatch"), std::string::npos)
      << status;
  EXPECT_NE(status.message().find(path), std::string::npos) << status;
}

TEST_F(FaultInjectionTest, TornWriteIsCaughtOnRead) {
  std::string path = FreshDir("disk_torn") + "/t.xrank";
  auto file = storage::PageFile::CreateOnDisk(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Allocate().ok());

  // Every byte matters: any torn prefix leaves a payload whose tail
  // disagrees with the header CRC.
  storage::Page page{};
  for (size_t i = 0; i < storage::kPageSize; ++i) {
    page.data[i] = static_cast<char>((i * 31 + 7) & 0xFF);
  }
  {
    FailPointSpec spec;
    spec.max_triggers = 1;
    ScopedFailPoint fp("page_file.torn_write", spec);
    EXPECT_FALSE((*file)->Write(0, page).ok());  // simulated mid-write crash
  }
  storage::Page out{};
  Status status = (*file)->Read(0, &out);
  EXPECT_EQ(status.code(), StatusCode::kCorruption) << status;
}

TEST_F(FaultInjectionTest, ExternalBitRotIsCaughtOnRead) {
  std::string dir = FreshDir("disk_bitrot");
  std::string path = dir + "/t.xrank";
  {
    auto file = storage::PageFile::CreateOnDisk(path);
    ASSERT_TRUE(file.ok());
    for (int p = 0; p < 3; ++p) {
      ASSERT_TRUE((*file)->Allocate().ok());
      storage::Page page{};
      page.WriteU32(8, static_cast<uint32_t>(p) * 7 + 1);
      ASSERT_TRUE((*file)->Write(static_cast<storage::PageId>(p), page).ok());
    }
    ASSERT_TRUE((*file)->Sync().ok());
  }
  // Flip one payload byte of page 1 behind the storage layer's back.
  {
    std::FILE* raw = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(raw, nullptr);
    long offset = (storage::kDiskPageHeaderSize + storage::kPageSize) * 1 +
                  storage::kDiskPageHeaderSize + 500;
    ASSERT_EQ(std::fseek(raw, offset, SEEK_SET), 0);
    int c = std::fgetc(raw);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(raw, offset, SEEK_SET), 0);
    std::fputc(c ^ 0xFF, raw);
    std::fclose(raw);
  }
  auto reopened = storage::PageFile::OpenOnDisk(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  storage::Page out{};
  EXPECT_TRUE((*reopened)->Read(0, &out).ok());  // untouched page still fine
  Status status = (*reopened)->Read(1, &out);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("page 1"), std::string::npos) << status;
}

// --- the generic FaultInjectionPageFile wrapper ---

TEST_F(FaultInjectionTest, WrapperInjectsReadErrorsAndBitFlips) {
  storage::FaultInjectionPageFile file(storage::PageFile::CreateInMemory(),
                                       "fipf");
  ASSERT_TRUE(file.Allocate().ok());
  storage::Page page{};
  page.WriteU32(16, 4242);
  ASSERT_TRUE(file.Write(0, page).ok());

  {
    FailPointSpec spec;
    spec.max_triggers = 1;
    ScopedFailPoint fp("fipf.read", spec);
    storage::Page out{};
    EXPECT_EQ(file.Read(0, &out).code(), StatusCode::kIOError);
    EXPECT_TRUE(file.Read(0, &out).ok());  // trigger budget spent
    EXPECT_EQ(out.ReadU32(16), 4242u);
  }
  {
    FailPointSpec spec;
    spec.action = Action::kBitFlip;
    spec.max_triggers = 1;
    ScopedFailPoint fp("fipf.read", spec);
    storage::Page out{};
    ASSERT_TRUE(file.Read(0, &out).ok());
    int differing_bits = 0;
    for (size_t i = 0; i < storage::kPageSize; ++i) {
      differing_bits +=
          __builtin_popcount((static_cast<unsigned char>(out.data[i]) ^
                              static_cast<unsigned char>(page.data[i])) &
                             0xFF);
    }
    EXPECT_EQ(differing_bits, 1);  // exactly one flipped bit
  }
}

TEST_F(FaultInjectionTest, WrapperTornWriteKeepsPrefixOnly) {
  storage::FaultInjectionPageFile file(storage::PageFile::CreateInMemory(),
                                       "fipf");
  ASSERT_TRUE(file.Allocate().ok());
  storage::Page page{};
  for (size_t i = 0; i < storage::kPageSize; ++i) {
    page.data[i] = static_cast<char>(i & 0x7F);
  }
  FailPointSpec spec;
  spec.action = Action::kTornWrite;
  spec.max_triggers = 1;
  ScopedFailPoint fp("fipf.write", spec);
  EXPECT_EQ(file.Write(0, page).code(), StatusCode::kIOError);
  storage::Page out{};
  ASSERT_TRUE(file.Read(0, &out).ok());
  // Some prefix of the new payload landed; the tail still holds old bytes
  // (zeros, from the fresh allocation).
  size_t prefix = 0;
  while (prefix < storage::kPageSize && out.data[prefix] == page.data[prefix]) {
    ++prefix;
  }
  for (size_t i = prefix; i < storage::kPageSize; ++i) {
    ASSERT_EQ(out.data[i], 0) << "torn write leaked past its prefix at " << i;
  }
}

// --- crash-safe index commit ---

TEST_F(FaultInjectionTest, CommittedDirectoryReopensAndServes) {
  std::string dir = FreshDir("commit_ok");
  EngineOptions options = DiskOptions(dir);
  auto built = XRankEngine::Build(Corpus(), options);
  ASSERT_TRUE(built.ok()) << built.status();
  auto baseline = (*built)->Query("xql language", 10, IndexKind::kDil);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_FALSE(baseline->results.empty());

  auto manifest = index::ReadManifestFile(dir);
  ASSERT_TRUE(manifest.ok()) << manifest.status();
  EXPECT_EQ(manifest->entries.size(), 2u);

  auto reopened = XRankEngine::Open(Corpus(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  for (IndexKind kind : {IndexKind::kDil, IndexKind::kHdil}) {
    auto response = (*reopened)->Query("xql language", 10, kind);
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_EQ(response->results.size(), baseline->results.size());
    for (size_t i = 0; i < response->results.size(); ++i) {
      EXPECT_EQ(response->results[i].id, baseline->results[i].id);
      EXPECT_DOUBLE_EQ(response->results[i].rank, baseline->results[i].rank);
    }
  }
}

TEST_F(FaultInjectionTest, CrashBeforeRenameLeavesNothingCommitted) {
  std::string dir = FreshDir("crash_rename");
  EngineOptions options = DiskOptions(dir);
  {
    FailPointSpec spec;
    spec.max_triggers = 1;
    ScopedFailPoint fp("index_commit.before_rename", spec);
    auto built = XRankEngine::Build(Corpus(), options);
    ASSERT_FALSE(built.ok());
    EXPECT_EQ(built.status().code(), StatusCode::kIOError);
  }
  // No commit point was reached: open must refuse, precisely.
  auto reopened = XRankEngine::Open(Corpus(), options);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kNotFound);
  EXPECT_NE(reopened.status().message().find("MANIFEST"), std::string::npos);
  // A clean rebuild over the crashed directory succeeds and serves.
  auto rebuilt = XRankEngine::Build(Corpus(), options);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  auto reopened2 = XRankEngine::Open(Corpus(), options);
  ASSERT_TRUE(reopened2.ok()) << reopened2.status();
}

TEST_F(FaultInjectionTest, CrashBetweenRenameAndManifestIsRefused) {
  std::string dir = FreshDir("crash_manifest");
  EngineOptions options = DiskOptions(dir);
  {
    FailPointSpec spec;
    spec.max_triggers = 1;
    ScopedFailPoint fp("index_commit.before_manifest", spec);
    auto built = XRankEngine::Build(Corpus(), options);
    ASSERT_FALSE(built.ok());
  }
  // Data files exist under their final names, but no MANIFEST seals them.
  auto orphan = storage::PageFile::OpenOnDisk(dir + "/DIL.xrank");
  EXPECT_TRUE(orphan.ok());
  auto reopened = XRankEngine::Open(Corpus(), options);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kNotFound);
  auto rebuilt = XRankEngine::Build(Corpus(), options);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
}

TEST_F(FaultInjectionTest, TamperedCommittedFileIsRefusedOnOpen) {
  std::string dir = FreshDir("tamper");
  EngineOptions options = DiskOptions(dir);
  auto built = XRankEngine::Build(Corpus(), options);
  ASSERT_TRUE(built.ok()) << built.status();
  built->reset();  // close the files before tampering

  std::string victim = dir + "/HDIL.xrank";
  std::FILE* raw = std::fopen(victim.c_str(), "r+b");
  ASSERT_NE(raw, nullptr);
  long offset = storage::kDiskPageHeaderSize + 64;  // payload of page 0
  ASSERT_EQ(std::fseek(raw, offset, SEEK_SET), 0);
  int c = std::fgetc(raw);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(raw, offset, SEEK_SET), 0);
  std::fputc(c ^ 0xFF, raw);
  std::fclose(raw);

  auto reopened = XRankEngine::Open(Corpus(), options);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
  EXPECT_NE(reopened.status().message().find("HDIL.xrank"), std::string::npos)
      << reopened.status();
}

TEST_F(FaultInjectionTest, ManifestTextRejectsTampering) {
  index::Manifest manifest;
  manifest.entries.push_back(
      index::ManifestEntry{"DIL.xrank", IndexKind::kDil, 12, 0xABCD1234});
  std::string blob = index::SerializeManifest(manifest);
  auto parsed = index::ParseManifest(blob);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->entries.size(), 1u);
  EXPECT_EQ(parsed->entries[0].file, "DIL.xrank");
  EXPECT_EQ(parsed->entries[0].page_count, 12u);
  EXPECT_EQ(parsed->entries[0].crc, 0xABCD1234u);
  // Any single-byte change (including inside numbers) must be detected.
  for (size_t i = 0; i < blob.size(); ++i) {
    std::string copy = blob;
    copy[i] = static_cast<char>(copy[i] ^ 0x01);
    auto damaged = index::ParseManifest(copy);
    EXPECT_FALSE(damaged.ok()) << "byte " << i << " flip went unnoticed";
  }
  // Truncations too.
  for (size_t len = 0; len < blob.size(); ++len) {
    auto truncated = index::ParseManifest(blob.substr(0, len));
    EXPECT_FALSE(truncated.ok()) << "truncation to " << len << " accepted";
  }
}

// --- build and query sweeps under injected faults ---

TEST_F(FaultInjectionTest, BuildSurvivesTransientWriteFaults) {
  std::string dir = FreshDir("build_transient");
  FailPointSpec spec;
  spec.skip = 5;
  spec.max_triggers = 3;  // within one write's retry budget
  ScopedFailPoint fp("page_file.write", spec);
  auto built = XRankEngine::Build(Corpus(), DiskOptions(dir));
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_EQ(fp.triggers(), 3u);
  auto response = (*built)->Query("xql language", 10, IndexKind::kDil);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_FALSE(response->results.empty());
}

TEST_F(FaultInjectionTest, BuildFailsCleanlyUnderPersistentFaults) {
  for (const char* site : {"page_file.write", "page_file.sync"}) {
    std::string dir = FreshDir(std::string("build_persist_") +
                               (site[10] == 'w' ? "w" : "s"));
    ScopedFailPoint fp(site, FailPointSpec{});  // unlimited errors
    auto built = XRankEngine::Build(Corpus(), DiskOptions(dir));
    ASSERT_FALSE(built.ok()) << site;
    EXPECT_EQ(built.status().code(), StatusCode::kIOError) << site;
    FailPoints::Instance().DisarmAll();
    // The failed build committed nothing.
    auto reopened = XRankEngine::Open(Corpus(), DiskOptions(dir));
    EXPECT_FALSE(reopened.ok()) << site;
  }
}

TEST_F(FaultInjectionTest, QueriesSurviveTransientReadFaultsUnchanged) {
  std::string dir = FreshDir("query_sweep");
  EngineOptions options = DiskOptions(dir);
  auto engine = XRankEngine::Build(Corpus(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto baseline = (*engine)->Query("xql language", 10, IndexKind::kDil);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_FALSE(baseline->results.empty());

  // Fail the s-th page read once, for every s: the retry must absorb each
  // single transient and the results must be bit-identical to the clean run.
  for (uint64_t s = 0; s < 20; ++s) {
    FailPointSpec spec;
    spec.skip = s;
    spec.max_triggers = 1;
    ScopedFailPoint fp("page_file.read", spec);
    auto response = (*engine)->Query("xql language", 10, IndexKind::kDil);
    ASSERT_TRUE(response.ok()) << "skip=" << s << ": " << response.status();
    ASSERT_EQ(response->results.size(), baseline->results.size());
    for (size_t i = 0; i < response->results.size(); ++i) {
      EXPECT_EQ(response->results[i].id, baseline->results[i].id);
      EXPECT_DOUBLE_EQ(response->results[i].rank, baseline->results[i].rank);
    }
  }

  // A persistent read fault surfaces as a clean IOError, never a crash.
  ScopedFailPoint fp("page_file.read", FailPointSpec{});
  auto failed = (*engine)->Query("xql language", 10, IndexKind::kDil);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError);
}

// --- deadlines and cooperative cancellation ---

TEST_F(FaultInjectionTest, CancelledQueryReturnsDeadlineExceeded) {
  EngineOptions options;
  options.indexes = {IndexKind::kNaiveId, IndexKind::kNaiveRank,
                     IndexKind::kDil, IndexKind::kRdil, IndexKind::kHdil};
  auto engine = XRankEngine::Build(Corpus(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  std::atomic<bool> cancel{true};  // cancelled before the query starts
  query::QueryOptions qopts;
  qopts.cancel = &cancel;
  uint64_t expected = 0;
  for (IndexKind kind :
       {IndexKind::kNaiveId, IndexKind::kNaiveRank, IndexKind::kDil,
        IndexKind::kRdil, IndexKind::kHdil}) {
    auto response = (*engine)->Query("xql language", 10, kind, qopts);
    ASSERT_FALSE(response.ok()) << index::IndexKindName(kind);
    EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded)
        << index::IndexKindName(kind);
    ++expected;
    EXPECT_EQ((*engine)->serving_counters(kind).deadline_exceeded_queries,
              expected);
  }
}

TEST_F(FaultInjectionTest, CancelledQueryCanServePartialResults) {
  EngineOptions options;
  options.indexes = {IndexKind::kDil};
  auto engine = XRankEngine::Build(Corpus(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  std::atomic<bool> cancel{true};
  query::QueryOptions qopts;
  qopts.cancel = &cancel;
  qopts.allow_partial_results = true;
  auto partial = (*engine)->Query("xql language", 10, IndexKind::kDil, qopts);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_TRUE(partial->stats.partial);
  EXPECT_EQ((*engine)->serving_counters(IndexKind::kDil)
                .partial_result_queries,
            1u);

  // The truncated response must not have been cached: the same query
  // without a budget returns the full result set.
  auto full = (*engine)->Query("xql language", 10, IndexKind::kDil);
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_FALSE(full->stats.partial);
  EXPECT_FALSE(full->results.empty());
  EXPECT_GE(full->results.size(), partial->results.size());
}

TEST_F(FaultInjectionTest, EngineDefaultQueryOptionsApply) {
  std::atomic<bool> cancel{true};
  EngineOptions options;
  options.indexes = {IndexKind::kHdil};
  options.query.cancel = &cancel;
  options.query.allow_partial_results = true;
  auto engine = XRankEngine::Build(Corpus(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto response = (*engine)->Query("xql language", 10, IndexKind::kHdil);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->stats.partial);
}

TEST_F(FaultInjectionTest, DeadlineExpiryIsPrompt) {
  // The acceptance bound is "deadline honored within 2x". Drive the checker
  // directly in a tight loop: the clock stride must not let expiry detection
  // drift past twice the budget.
  query::QueryOptions qopts;
  qopts.deadline_ms = 100;
  query::QueryDeadline deadline(qopts);
  auto start = std::chrono::steady_clock::now();
  while (deadline.Check().ok()) {
  }
  double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed_ms, 99.0);
  EXPECT_LE(elapsed_ms, 200.0);  // within 2x
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FaultInjectionTest, CompactionRecommitsManifest) {
  std::string dir = FreshDir("compact");
  EngineOptions options = DiskOptions(dir);
  auto engine = XRankEngine::Build(Corpus(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto before = index::ReadManifestFile(dir);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE((*engine)->DeleteDocument("second.xml").ok());
  ASSERT_TRUE((*engine)->CompactDeletions().ok());
  // The compacted (smaller) files are sealed by a fresh MANIFEST; the
  // directory reopens cleanly against them.
  auto after = index::ReadManifestFile(dir);
  ASSERT_TRUE(after.ok()) << after.status();
  for (const index::ManifestEntry& entry : after->entries) {
    EXPECT_TRUE(index::VerifyManifestEntry(dir, entry).ok()) << entry.file;
  }
}

}  // namespace
}  // namespace xrank
