// Tests for the alternative ranking/semantics modes: tf-idf posting ranks
// (paper Section 4's "other ways of ranking XML elements") and disjunctive
// query semantics (Section 2.2).

#include <gtest/gtest.h>

#include <set>

#include "core/engine.h"
#include "index/index_builder.h"
#include "query/dil_query.h"
#include "query/rdil_query.h"
#include "test_util.h"
#include "xml/parser.h"

namespace xrank {
namespace {

using core::EngineOptions;
using core::XRankEngine;
using index::IndexKind;

std::vector<xml::Document> ParseAll(
    std::vector<std::pair<const char*, const char*>> sources) {
  std::vector<xml::Document> docs;
  for (const auto& [text, uri] : sources) {
    auto doc = xml::ParseDocument(text, uri);
    EXPECT_TRUE(doc.ok()) << doc.status();
    docs.push_back(std::move(doc).value());
  }
  return docs;
}

// --- tf-idf ---

TEST(TfIdfTest, RanksReflectTermFrequencyAndRarity) {
  // 'common' in every doc; 'rare' once; 'burst' appears 4x in one element.
  auto docs = ParseAll({
      {"<d><p>common common burst burst burst burst</p></d>", "d1"},
      {"<d><p>common filler</p></d>", "d2"},
      {"<d><p>common rare</p></d>", "d3"},
      {"<d><p>common filler</p></d>", "d4"},
  });
  graph::GraphBuilder builder;
  for (const auto& doc : docs) ASSERT_TRUE(builder.AddDocument(doc).ok());
  auto graph = std::move(builder).Finalize();
  ASSERT_TRUE(graph.ok());
  auto ranks = rank::ComputeElemRank(*graph, rank::ElemRankOptions{});
  ASSERT_TRUE(ranks.ok());

  index::ExtractionOptions options;
  options.rank_source = index::RankSource::kTfIdf;
  auto extracted = index::ExtractPostings(*graph, ranks->ranks, options);
  ASSERT_TRUE(extracted.ok()) << extracted.status();

  // All ranks in (0, 1].
  for (const auto& [term, postings] : extracted->dewey_postings) {
    for (const auto& posting : postings) {
      EXPECT_GT(posting.elem_rank, 0.0f) << term;
      EXPECT_LE(posting.elem_rank, 1.0f) << term;
    }
  }
  // Rare term outranks the ubiquitous one (idf).
  float rare = extracted->dewey_postings.at("rare")[0].elem_rank;
  float common = extracted->dewey_postings.at("common")[0].elem_rank;
  EXPECT_GT(rare, common);
  // Term frequency raises the rank (tf), at equal df... 'burst' df=1 like
  // 'rare' but tf=4 > 1.
  float burst = extracted->dewey_postings.at("burst")[0].elem_rank;
  EXPECT_GT(burst, rare);
}

TEST(TfIdfTest, EngineEndToEndAgreesAcrossIndexes) {
  EngineOptions options;
  options.extraction.rank_source = index::RankSource::kTfIdf;
  options.indexes = {IndexKind::kDil, IndexKind::kRdil, IndexKind::kHdil};
  std::vector<xml::Document> docs;
  auto doc = xml::ParseDocument(testutil::Figure1Xml(), "f");
  ASSERT_TRUE(doc.ok());
  docs.push_back(std::move(doc).value());
  auto engine = XRankEngine::Build(std::move(docs), options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  for (const char* query : {"xql", "xql language", "querying xyleme"}) {
    auto dil = (*engine)->Query(query, 10, IndexKind::kDil);
    auto rdil = (*engine)->Query(query, 10, IndexKind::kRdil);
    auto hdil = (*engine)->Query(query, 10, IndexKind::kHdil);
    ASSERT_TRUE(dil.ok() && rdil.ok() && hdil.ok());
    ASSERT_EQ(dil->results.size(), rdil->results.size()) << query;
    ASSERT_EQ(dil->results.size(), hdil->results.size()) << query;
    for (size_t i = 0; i < dil->results.size(); ++i) {
      EXPECT_EQ(dil->results[i].id, rdil->results[i].id) << query;
      EXPECT_EQ(dil->results[i].id, hdil->results[i].id) << query;
    }
  }
}

TEST(TfIdfTest, ChangesOrderingVersusElemRank) {
  // Two papers: A is heavily cited (high ElemRank) and mentions 'topic'
  // once among much text; B is obscure but is *about* 'topic' (tf 3 in a
  // short element). ElemRank mode favors A, tf-idf mode favors B.
  std::vector<std::pair<std::string, std::string>> sources = {
      {"<p><t>topic word1 word2 word3 word4 word5 word6 word7</t></p>", "a"},
      {"<p><t>topic topic topic</t></p>", "b"},
  };
  for (int i = 0; i < 6; ++i) {
    sources.emplace_back("<p><c xlink=\"a\">x</c></p>",
                         "citer" + std::to_string(i));
  }
  auto parse_all = [&]() {
    std::vector<xml::Document> docs;
    for (const auto& [text, uri] : sources) {
      auto doc = xml::ParseDocument(text, uri);
      EXPECT_TRUE(doc.ok());
      docs.push_back(std::move(doc).value());
    }
    return docs;
  };

  auto run = [&](index::RankSource source) {
    EngineOptions options;
    options.extraction.rank_source = source;
    options.indexes = {IndexKind::kDil};
    auto engine = XRankEngine::Build(parse_all(), options);
    EXPECT_TRUE(engine.ok());
    auto response = (*engine)->Query("topic", 5, IndexKind::kDil);
    EXPECT_TRUE(response.ok());
    return response->results.empty() ? std::string()
                                     : response->results[0].document_uri;
  };
  EXPECT_EQ(run(index::RankSource::kElemRank), "a");
  EXPECT_EQ(run(index::RankSource::kTfIdf), "b");
}

// --- disjunctive semantics ---

TEST(DisjunctiveTest, ReturnsElementsWithAnyKeyword) {
  auto corpus = testutil::BuildIndexedCorpus({
      {"<r><a>apple</a><b>pear</b><c>plum</c><d>apple pear</d></r>", "doc"},
  });
  query::ScoringOptions scoring;
  scoring.semantics = query::QuerySemantics::kDisjunctive;
  query::DilQueryProcessor processor(corpus->pool(IndexKind::kDil),
                                     corpus->lexicon(IndexKind::kDil),
                                     scoring);
  auto response = processor.Execute({"apple", "pear"}, 20);
  ASSERT_TRUE(response.ok()) << response.status();
  std::set<std::string> ids;
  for (const auto& result : response->results) {
    ids.insert(result.id.ToString());
  }
  // <a>, <b>, <d> each directly contain a keyword; <c> and ancestors with
  // only R0-descendant occurrences do not qualify.
  EXPECT_EQ(ids, (std::set<std::string>{"0.0", "0.1", "0.3"}));
}

TEST(DisjunctiveTest, BothKeywordsOutrankOne) {
  auto corpus = testutil::BuildIndexedCorpus({
      {"<r><a>apple</a><d>apple pear</d></r>", "doc"},
  });
  query::ScoringOptions scoring;
  scoring.semantics = query::QuerySemantics::kDisjunctive;
  query::DilQueryProcessor processor(corpus->pool(IndexKind::kDil),
                                     corpus->lexicon(IndexKind::kDil),
                                     scoring);
  auto response = processor.Execute({"apple", "pear"}, 20);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->results.size(), 2u);
  // <d> (both keywords) first, <a> (one) second — sibling elements share
  // the same ElemRank, so the keyword-sum decides.
  EXPECT_EQ(response->results[0].id, dewey::DeweyId({0, 1}));
  EXPECT_EQ(response->results[1].id, dewey::DeweyId({0, 0}));
  EXPECT_GT(response->results[0].rank, response->results[1].rank);
}

TEST(DisjunctiveTest, RankOrderedProcessorsRejectDisjunctive) {
  auto corpus = testutil::BuildIndexedCorpus({
      {"<r><a>apple pear</a></r>", "doc"},
  });
  query::ScoringOptions scoring;
  scoring.semantics = query::QuerySemantics::kDisjunctive;
  query::RdilQueryProcessor rdil(corpus->pool(IndexKind::kRdil),
                                 corpus->lexicon(IndexKind::kRdil), scoring);
  auto response = rdil.Execute({"apple", "pear"}, 5);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnimplemented);
}

TEST(DisjunctiveTest, MatchesConjunctiveWhenAllCooccur) {
  // When every keyword occurrence is co-located, disjunctive and
  // conjunctive result sets coincide.
  auto corpus = testutil::BuildIndexedCorpus({
      {"<r><a>apple pear</a><b>apple pear</b></r>", "doc"},
  });
  query::ScoringOptions conjunctive;
  query::ScoringOptions disjunctive;
  disjunctive.semantics = query::QuerySemantics::kDisjunctive;
  query::DilQueryProcessor conj(corpus->pool(IndexKind::kDil),
                                corpus->lexicon(IndexKind::kDil),
                                conjunctive);
  query::DilQueryProcessor disj(corpus->pool(IndexKind::kDil),
                                corpus->lexicon(IndexKind::kDil),
                                disjunctive);
  auto a = conj.Execute({"apple", "pear"}, 10);
  auto b = disj.Execute({"apple", "pear"}, 10);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->results.size(), b->results.size());
  for (size_t i = 0; i < a->results.size(); ++i) {
    EXPECT_EQ(a->results[i].id, b->results[i].id);
    EXPECT_NEAR(a->results[i].rank, b->results[i].rank, 1e-9);
  }
}

}  // namespace
}  // namespace xrank
