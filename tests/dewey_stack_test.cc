// Tests for the Dewey-stack merge (paper Figure 5): most-specific-result
// computation, spurious-ancestor suppression, independent-occurrence
// semantics, and decay scaling — checked directly against hand-computed
// expectations.

#include "query/dewey_stack.h"

#include <gtest/gtest.h>

#include <map>

#include "query/proximity.h"

namespace xrank::query {
namespace {

using dewey::DeweyId;
using index::Posting;

struct MergeRun {
  ScoringOptions scoring;
  std::vector<CandidateResult> results;
  std::map<std::string, CandidateResult> by_id;

  void Run(size_t keywords,
           std::vector<std::pair<size_t, Posting>> entries,
           size_t min_depth = 1) {
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) {
                if (a.second.id != b.second.id) {
                  return a.second.id < b.second.id;
                }
                return a.first < b.first;
              });
    DeweyStackMerger merger(keywords, scoring, min_depth,
                            [&](const CandidateResult& candidate) {
                              results.push_back(candidate);
                              by_id[candidate.id.ToString()] = candidate;
                            });
    for (const auto& [keyword, posting] : entries) {
      merger.Add(keyword, posting);
    }
    merger.Flush();
  }

  bool Has(const std::string& id) const { return by_id.count(id) > 0; }
};

Posting P(std::initializer_list<uint32_t> id, float rank,
          std::initializer_list<uint32_t> positions) {
  Posting posting;
  posting.id = DeweyId(id);
  posting.elem_rank = rank;
  posting.positions = positions;
  return posting;
}

// Paper Figure 6 walk-through: 'XQL Ricardo' over Figure 4's DIL.
// XQL: 5.0.3.0.0 and 6.0.3.8.3; Ricardo: 5.0.3.0.1 and 8.2.1.4.2.
TEST(DeweyStackTest, Figure6WalkThrough) {
  MergeRun run;
  run.scoring.proximity = ProximityMode::kAlwaysOne;
  run.Run(2, {
                 {0, P({5, 0, 3, 0, 0}, 0.3f, {10})},
                 {1, P({5, 0, 3, 0, 1}, 0.4f, {12})},
                 {0, P({6, 0, 3, 8, 3}, 0.2f, {7})},
                 {1, P({8, 2, 1, 4, 2}, 0.5f, {3})},
             });
  // The only element containing both keywords is 5.0.3.0.
  ASSERT_EQ(run.results.size(), 1u);
  const CandidateResult& result = run.results[0];
  EXPECT_EQ(result.id, DeweyId({5, 0, 3, 0}));
  // Each keyword's rank decayed one level: ElemRank * decay^1.
  EXPECT_NEAR(result.keyword_ranks[0], 0.3 * run.scoring.decay, 1e-6);
  EXPECT_NEAR(result.keyword_ranks[1], 0.4 * run.scoring.decay, 1e-6);
  EXPECT_NEAR(result.overall_rank, (0.3 + 0.4) * run.scoring.decay, 1e-6);
}

// Section 2.2 example: 'XQL language' — the subsection directly containing
// both keywords is returned; its section/body ancestors are not; the paper
// element with independent occurrences is.
TEST(DeweyStackTest, MostSpecificAndIndependentOccurrences) {
  MergeRun run;
  run.scoring.proximity = ProximityMode::kAlwaysOne;
  // Model: paper = 1.0; title = 1.0.0 (both keywords); body = 1.0.1;
  // subsection = 1.0.1.0.0 (both keywords).
  run.Run(2, {
                 {0, P({1, 0, 0}, 0.5f, {1})},
                 {1, P({1, 0, 0}, 0.5f, {2})},
                 {0, P({1, 0, 1, 0, 0}, 0.3f, {20})},
                 {1, P({1, 0, 1, 0, 0}, 0.3f, {21})},
             });
  // Results: the title, the subsection — and NOT 1.0.1 / 1.0.1.0 / 1.0
  // (their only occurrences flow through R0 members)... except that 1.0
  // has TWO R0 descendants, and each is suppressed, so 1.0 itself has no
  // independent leftover occurrences and must not be returned either.
  EXPECT_TRUE(run.Has("1.0.0"));
  EXPECT_TRUE(run.Has("1.0.1.0.0"));
  EXPECT_FALSE(run.Has("1.0.1.0"));
  EXPECT_FALSE(run.Has("1.0.1"));
  EXPECT_FALSE(run.Has("1.0"));
  EXPECT_FALSE(run.Has("1"));
  EXPECT_EQ(run.results.size(), 2u);
}

// An ancestor with one R0 child plus an independent partial occurrence of
// each keyword elsewhere IS a result (the <paper> case of Section 2.2).
TEST(DeweyStackTest, AncestorWithIndependentOccurrencesReturned) {
  MergeRun run;
  run.scoring.proximity = ProximityMode::kAlwaysOne;
  // paper = 1.0; subsection 1.0.2.0 contains both; title 1.0.0 has only
  // keyword 0; abstract 1.0.1 has only keyword 1.
  run.Run(2, {
                 {0, P({1, 0, 0}, 0.5f, {1})},
                 {1, P({1, 0, 1}, 0.4f, {5})},
                 {0, P({1, 0, 2, 0}, 0.3f, {30})},
                 {1, P({1, 0, 2, 0}, 0.3f, {31})},
             });
  ASSERT_TRUE(run.Has("1.0.2.0"));
  ASSERT_TRUE(run.Has("1.0"));
  // 1.0's ranks come only from the independent occurrences (decay^1), not
  // from the R0 subtree.
  const CandidateResult& paper = run.by_id["1.0"];
  EXPECT_NEAR(paper.keyword_ranks[0], 0.5 * run.scoring.decay, 1e-6);
  EXPECT_NEAR(paper.keyword_ranks[1], 0.4 * run.scoring.decay, 1e-6);
  // And 1 (the root) is not a result: its occurrences flow through 1.0,
  // which is in R0.
  EXPECT_FALSE(run.Has("1"));
}

TEST(DeweyStackTest, DecayCompoundsPerLevel) {
  MergeRun run;
  run.scoring.decay = 0.5;
  run.scoring.proximity = ProximityMode::kAlwaysOne;
  // Keyword 0 at depth 5, keyword 1 at depth 2; meet at depth 1.
  run.Run(2, {
                 {0, P({3, 0, 0, 0, 0}, 0.8f, {1})},
                 {1, P({3, 1}, 0.6f, {50})},
             });
  ASSERT_TRUE(run.Has("3"));
  const CandidateResult& result = run.by_id["3"];
  // Keyword 0 decays 4 levels: 0.8 * 0.5^4; keyword 1 decays 1: 0.6 * 0.5.
  EXPECT_NEAR(result.keyword_ranks[0], 0.8 * 0.0625, 1e-6);
  EXPECT_NEAR(result.keyword_ranks[1], 0.6 * 0.5, 1e-6);
}

TEST(DeweyStackTest, MaxAggregationTakesBestOccurrence) {
  MergeRun run;
  run.scoring.decay = 0.5;
  run.scoring.aggregation = RankAggregation::kMax;
  run.scoring.proximity = ProximityMode::kAlwaysOne;
  // Two children of 1.0 contain keyword 0 (ranks 0.2 and 0.9); keyword 1
  // directly in a third child.
  run.Run(2, {
                 {0, P({1, 0, 0}, 0.2f, {1})},
                 {0, P({1, 0, 1}, 0.9f, {5})},
                 {1, P({1, 0, 2}, 0.4f, {9})},
             });
  ASSERT_TRUE(run.Has("1.0"));
  EXPECT_NEAR(run.by_id["1.0"].keyword_ranks[0], 0.9 * 0.5, 1e-6);
}

TEST(DeweyStackTest, SumAggregationAddsOccurrences) {
  MergeRun run;
  run.scoring.decay = 0.5;
  run.scoring.aggregation = RankAggregation::kSum;
  run.scoring.proximity = ProximityMode::kAlwaysOne;
  run.Run(2, {
                 {0, P({1, 0, 0}, 0.2f, {1})},
                 {0, P({1, 0, 1}, 0.9f, {5})},
                 {1, P({1, 0, 2}, 0.4f, {9})},
             });
  ASSERT_TRUE(run.Has("1.0"));
  EXPECT_NEAR(run.by_id["1.0"].keyword_ranks[0], (0.2 + 0.9) * 0.5, 1e-6);
}

TEST(DeweyStackTest, ProximityScalesOverallRank) {
  MergeRun run;
  run.scoring.proximity = ProximityMode::kReciprocalWindow;
  // Both keywords directly in one element, 4 words apart -> window 5,
  // tightest possible would be 2, so proximity = 2/5.
  run.Run(2, {
                 {0, P({1, 0}, 0.5f, {10})},
                 {1, P({1, 0}, 0.5f, {14})},
             });
  ASSERT_TRUE(run.Has("1.0"));
  const CandidateResult& result = run.by_id["1.0"];
  EXPECT_EQ(result.window, 5u);
  EXPECT_NEAR(result.overall_rank, (0.5 + 0.5) * (2.0 / 5.0), 1e-6);
}

TEST(DeweyStackTest, SingleKeywordReturnsEveryPostingElement) {
  MergeRun run;
  run.Run(1, {
                 {0, P({1, 0}, 0.5f, {1})},
                 {0, P({1, 0, 2}, 0.3f, {8})},
                 {0, P({2, 1}, 0.2f, {4})},
             });
  // Every directly-containing element is a result; ancestors are not
  // (their occurrences flow through R0 members).
  EXPECT_TRUE(run.Has("1.0"));
  EXPECT_TRUE(run.Has("1.0.2"));
  EXPECT_TRUE(run.Has("2.1"));
  EXPECT_FALSE(run.Has("1"));
  EXPECT_FALSE(run.Has("2"));
  EXPECT_EQ(run.results.size(), 3u);
}

TEST(DeweyStackTest, MinResultDepthSuppressesShallowResults) {
  MergeRun run;
  run.scoring.proximity = ProximityMode::kAlwaysOne;
  run.Run(2,
          {
              {0, P({1, 0, 0}, 0.5f, {1})},
              {1, P({1, 0, 1}, 0.4f, {5})},
              {0, P({1, 2}, 0.5f, {20})},
              {1, P({1, 2}, 0.4f, {21})},
          },
          /*min_depth=*/2);
  EXPECT_TRUE(run.Has("1.0"));
  EXPECT_TRUE(run.Has("1.2"));
  // Depth-1 ancestor "1" would NOT qualify anyway here; check that nothing
  // shallower than 2 was emitted.
  for (const CandidateResult& result : run.results) {
    EXPECT_GE(result.id.depth(), 2u);
  }
}

TEST(DeweyStackTest, NoResultWhenKeywordsInDifferentDocuments) {
  MergeRun run;
  run.Run(2, {
                 {0, P({1, 0}, 0.5f, {1})},
                 {1, P({2, 0}, 0.4f, {2})},
             });
  EXPECT_TRUE(run.results.empty());
}

TEST(DeweyStackTest, EqualIdsAcrossKeywordsMergeIntoOneFrame) {
  MergeRun run;
  run.scoring.proximity = ProximityMode::kAlwaysOne;
  run.Run(3, {
                 {0, P({4, 1}, 0.5f, {1})},
                 {1, P({4, 1}, 0.5f, {2})},
                 {2, P({4, 1}, 0.5f, {3})},
             });
  ASSERT_EQ(run.results.size(), 1u);
  EXPECT_EQ(run.results[0].id, DeweyId({4, 1}));
  EXPECT_NEAR(run.results[0].overall_rank, 1.5, 1e-6);
}

}  // namespace
}  // namespace xrank::query
