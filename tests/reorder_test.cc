// Build-time document reordering (index/reorder.h): permutation validity
// and thread-count determinism, byte-identical on-disk builds, bitwise
// query parity between identity and BP-reordered engines (after mapping
// physical ids back through the permutation) across codecs, rank encodings
// and all five index kinds, compression monotonicity on a clustered
// corpus, reorder-id persistence/validation in headers, MANIFEST and
// SHARDING files, sharded parity, and live update + delete + compaction on
// a reordered engine.

#include "index/reorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "core/engine.h"
#include "core/shard_router.h"
#include "index/codec.h"
#include "index/index_builder.h"
#include "index/manifest.h"
#include "storage/page_file.h"
#include "xml/parser.h"

namespace xrank {
namespace {

using core::EngineOptions;
using core::EngineResponse;
using core::XRankEngine;
using index::IndexKind;

constexpr IndexKind kAllKinds[] = {IndexKind::kNaiveId, IndexKind::kNaiveRank,
                                   IndexKind::kDil, IndexKind::kRdil,
                                   IndexKind::kHdil};

// --- clustered synthetic corpus ---------------------------------------------
//
// `kClusters` groups of documents; documents of one cluster share a set of
// cluster-local terms plus a few globally common terms. Ingest order is
// deterministically shuffled so the identity layout scatters each cluster's
// postings across the doc-id space — exactly the layout BP reordering
// should repair (documents of a cluster become near-neighbors, shrinking
// doc-id gaps in the shared-term posting lists).

constexpr size_t kClusters = 8;
constexpr size_t kDocsPerCluster = 12;

std::string ClusterDocXml(size_t cluster, size_t member) {
  std::ostringstream xml;
  xml << "<doc><body>common shared corpus ";
  for (size_t t = 0; t < 5; ++t) {
    xml << "cluster" << cluster << "term" << t << " ";
  }
  xml << "unique" << cluster << "x" << member << "</body></doc>";
  return xml.str();
}

std::vector<std::pair<std::string, std::string>> ClusteredSources() {
  std::vector<std::pair<std::string, std::string>> sources;
  for (size_t c = 0; c < kClusters; ++c) {
    for (size_t m = 0; m < kDocsPerCluster; ++m) {
      std::ostringstream uri;
      uri << "c" << c << "m" << m << ".xml";
      sources.emplace_back(ClusterDocXml(c, m), uri.str());
    }
  }
  // Fixed LCG shuffle: interleaves the clusters in ingest order.
  uint64_t state = 0x9E3779B97F4A7C15ull;
  for (size_t i = sources.size(); i > 1; --i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    std::swap(sources[i - 1], sources[(state >> 33) % i]);
  }
  return sources;
}

std::vector<xml::Document> ClusteredCollection() {
  std::vector<xml::Document> docs;
  for (const auto& [text, uri] : ClusteredSources()) {
    auto doc = xml::ParseDocument(text, uri);
    EXPECT_TRUE(doc.ok()) << doc.status();
    docs.push_back(std::move(doc).value());
  }
  return docs;
}

EngineOptions AllIndexOptions() {
  EngineOptions options;
  options.indexes = {IndexKind::kNaiveId, IndexKind::kNaiveRank,
                     IndexKind::kDil, IndexKind::kRdil, IndexKind::kHdil};
  options.background_maintenance = false;
  return options;
}

index::ReorderOptions BpOptions(size_t threads = 1) {
  index::ReorderOptions reorder;
  reorder.algorithm = index::ReorderAlgorithm::kBp;
  reorder.min_partition = 4;
  reorder.num_threads = threads;
  return reorder;
}

// Queries whose posting lists span clusters (the shared terms) and stay
// inside one (the cluster-local terms).
std::vector<std::vector<std::string>> ClusterQueries() {
  return {{"shared"},
          {"common", "corpus"},
          {"cluster0term0"},
          {"cluster3term1", "shared"},
          {"cluster7term4", "cluster7term0"},
          {"unique2x3"}};
}

dewey::DeweyId WithDoc(const dewey::DeweyId& id, uint32_t doc) {
  std::vector<uint32_t> components = id.components();
  components[0] = doc;
  return dewey::DeweyId(std::move(components));
}

std::string FreshDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "/reorder_" + name;
  ::mkdir(dir.c_str(), 0755);
  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* entry = ::readdir(d)) {
      std::string file = entry->d_name;
      if (file == "." || file == "..") continue;
      std::remove((dir + "/" + file).c_str());
    }
    ::closedir(d);
  }
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- permutation properties -------------------------------------------------

TEST(ReorderTest, PermutationIsValidAndDeterministicAcrossThreadCounts) {
  auto docs = ClusteredCollection();
  EngineOptions options = AllIndexOptions();
  auto engine = XRankEngine::Build(std::move(docs), options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  index::ExtractionOptions extraction;
  extraction.build_naive = false;
  auto extracted = index::ExtractPostings((*engine)->graph(),
                                          (*engine)->elem_ranks(), extraction);
  ASSERT_TRUE(extracted.ok()) << extracted.status();
  const uint32_t doc_count =
      static_cast<uint32_t>((*engine)->graph().documents().size());

  index::DocPermutation reference = index::ComputeReorderPermutation(
      extracted->dewey_postings, doc_count, BpOptions(1));
  ASSERT_EQ(reference.new_to_old.size(), doc_count);
  ASSERT_EQ(reference.old_to_new.size(), doc_count);

  // A bijection whose inverse is consistent.
  std::vector<bool> seen(doc_count, false);
  for (uint32_t p = 0; p < doc_count; ++p) {
    const uint32_t old = reference.new_to_old[p];
    ASSERT_LT(old, doc_count);
    EXPECT_FALSE(seen[old]) << "doc " << old << " mapped twice";
    seen[old] = true;
    EXPECT_EQ(reference.old_to_new[old], p);
    EXPECT_EQ(reference.ToPhysical(old), p);
    EXPECT_EQ(reference.ToIdentity(p), old);
  }
  // BP must actually move something on this scattered corpus.
  EXPECT_FALSE(std::is_sorted(reference.new_to_old.begin(),
                              reference.new_to_old.end()));

  // Seed-free determinism: the permutation is a pure function of the
  // document-term graph, not of the worker count.
  for (size_t threads : {2u, 4u, 8u}) {
    index::DocPermutation perm = index::ComputeReorderPermutation(
        extracted->dewey_postings, doc_count, BpOptions(threads));
    EXPECT_EQ(perm.new_to_old, reference.new_to_old) << threads << " threads";
  }
}

TEST(ReorderTest, TinyAndDisabledCorporaGetIdentity) {
  std::map<std::string, std::vector<index::Posting>> postings;
  postings["a"].push_back(index::Posting{dewey::DeweyId{0, 0}, 0.5f, {}});

  // Disabled: identity regardless of corpus.
  index::DocPermutation off =
      index::ComputeReorderPermutation(postings, 10, index::ReorderOptions{});
  EXPECT_TRUE(off.empty());

  // A single document cannot be reordered.
  index::DocPermutation tiny =
      index::ComputeReorderPermutation(postings, 1, BpOptions());
  EXPECT_TRUE(tiny.empty());
}

// --- on-disk determinism ----------------------------------------------------

TEST(ReorderTest, DiskBuildIsByteIdenticalAcrossThreadCounts) {
  std::map<size_t, std::string> dirs;
  for (size_t threads : {1u, 4u}) {
    std::string dir = FreshDir("det_t" + std::to_string(threads));
    EngineOptions options = AllIndexOptions();
    options.disk_dir = dir;
    options.build.reorder = BpOptions(threads);
    auto engine = XRankEngine::Build(ClusteredCollection(), options);
    ASSERT_TRUE(engine.ok()) << engine.status();
    dirs[threads] = dir;
  }
  for (const char* file :
       {"Naive-ID.xrank", "Naive-Rank.xrank", "DIL.xrank", "RDIL.xrank",
        "HDIL.xrank", "MANIFEST"}) {
    EXPECT_EQ(ReadFileBytes(dirs[1] + "/" + file),
              ReadFileBytes(dirs[4] + "/" + file))
        << file;
  }
}

// --- query parity -----------------------------------------------------------

// Canonical order for comparing an identity-built and a reordered response:
// map every result id back to the identity doc-id space, then sort by
// (rank desc, id). Membership, ids and ranks must agree bitwise.
std::vector<std::pair<dewey::DeweyId, double>> CanonicalResults(
    const EngineResponse& response, const index::DocPermutation& perm) {
  std::vector<std::pair<dewey::DeweyId, double>> out;
  for (const auto& result : response.results) {
    dewey::DeweyId id = result.id;
    if (!perm.empty() && !id.empty()) {
      id = WithDoc(id, perm.ToIdentity(id.component(0)));
    }
    out.emplace_back(std::move(id), result.rank);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

TEST(ReorderTest, QueryParityAcrossCodecsRanksAndKinds) {
  const uint32_t codecs[] = {index::kPostingCodecVarint,
                             index::kPostingCodecBp128,
                             index::kPostingCodecVarintGb};
  for (uint32_t codec : codecs) {
    for (index::RankEncoding ranks :
         {index::RankEncoding::kFloat32, index::RankEncoding::kQuantU8}) {
      EngineOptions options = AllIndexOptions();
      options.build.format.codec_id = codec;
      options.build.format.ranks = ranks;

      auto identity = XRankEngine::Build(ClusteredCollection(), options);
      ASSERT_TRUE(identity.ok()) << identity.status();
      EXPECT_TRUE((*identity)->doc_permutation().empty());

      options.build.reorder = BpOptions();
      auto reordered = XRankEngine::Build(ClusteredCollection(), options);
      ASSERT_TRUE(reordered.ok()) << reordered.status();
      const index::DocPermutation& perm = (*reordered)->doc_permutation();
      ASSERT_FALSE(perm.empty());

      // m large enough to hold every match: the reordered engine may break
      // rank ties differently (tie-break is by physical id), so parity is
      // asserted on the full mapped result set, not a truncated prefix.
      for (const auto& keywords : ClusterQueries()) {
        for (IndexKind kind : kAllKinds) {
          auto expected = (*identity)->QueryKeywords(keywords, 400, kind);
          ASSERT_TRUE(expected.ok()) << expected.status();
          auto actual = (*reordered)->QueryKeywords(keywords, 400, kind);
          ASSERT_TRUE(actual.ok()) << actual.status();

          auto canonical_expected =
              CanonicalResults(*expected, index::DocPermutation{});
          auto canonical_actual = CanonicalResults(*actual, perm);
          std::ostringstream what;
          what << "codec " << codec << " ranks " << static_cast<int>(ranks)
               << " kind " << index::IndexKindName(kind) << " query "
               << keywords[0];
          ASSERT_EQ(canonical_actual.size(), canonical_expected.size())
              << what.str();
          for (size_t i = 0; i < canonical_actual.size(); ++i) {
            EXPECT_EQ(canonical_actual[i].first, canonical_expected[i].first)
                << what.str() << " result " << i;
            EXPECT_EQ(canonical_actual[i].second, canonical_expected[i].second)
                << what.str() << " result " << i;
          }
        }
      }
    }
  }
}

TEST(ReorderTest, ResultsDecorateWithIdentityDocumentUris) {
  EngineOptions options = AllIndexOptions();
  options.build.reorder = BpOptions();
  auto engine = XRankEngine::Build(ClusteredCollection(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_FALSE((*engine)->doc_permutation().empty());

  // The unique term pins the expected document; the result id must carry
  // the PHYSICAL doc id while the decorated URI names the original source.
  auto response = (*engine)->QueryKeywords({"unique2x3"}, 10, IndexKind::kDil);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_FALSE(response->results.empty());
  for (const auto& result : response->results) {
    EXPECT_EQ(result.document_uri, "c2m3.xml");
    const uint32_t physical = result.id.component(0);
    const uint32_t identity =
        (*engine)->doc_permutation().ToIdentity(physical);
    EXPECT_EQ((*engine)->graph().documents()[identity].uri, "c2m3.xml");
  }
}

// --- compression monotonicity -----------------------------------------------

// Like ClusteredCollection but deep: enough documents per cluster that a
// cluster term's posting list spans several 128-value bp128 blocks. The
// reorder win comes from gap-dominated blocks; the first block of every
// page carries the absolute doc id of its first posting, so single-block
// lists (tiny corpora) cannot improve no matter how well BP clusters.
std::vector<xml::Document> DeepClusteredCollection() {
  std::vector<std::pair<std::string, std::string>> sources;
  constexpr size_t kDeepClusters = 16;
  constexpr size_t kDeepDocs = 400;
  for (size_t c = 0; c < kDeepClusters; ++c) {
    for (size_t m = 0; m < kDeepDocs; ++m) {
      std::ostringstream xml, uri;
      xml << "<doc><body>common shared corpus ";
      for (size_t t = 0; t < 5; ++t) xml << "cl" << c << "t" << t << " ";
      xml << "uq" << c << "x" << m << "</body></doc>";
      uri << "deep_c" << c << "m" << m << ".xml";
      sources.emplace_back(xml.str(), uri.str());
    }
  }
  uint64_t state = 0x9E3779B97F4A7C15ull;
  for (size_t i = sources.size(); i > 1; --i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    std::swap(sources[i - 1], sources[(state >> 33) % i]);
  }
  std::vector<xml::Document> docs;
  for (const auto& [text, uri] : sources) {
    auto doc = xml::ParseDocument(text, uri);
    EXPECT_TRUE(doc.ok()) << doc.status();
    docs.push_back(std::move(doc).value());
  }
  return docs;
}

TEST(ReorderTest, ClusteredCorpusCompressesTighterAfterReorder) {
  EngineOptions options = AllIndexOptions();
  options.build.format.codec_id = index::kPostingCodecBp128;

  auto identity = XRankEngine::Build(DeepClusteredCollection(), options);
  ASSERT_TRUE(identity.ok()) << identity.status();

  options.build.reorder = BpOptions(4);
  options.build.reorder.min_partition = 8;
  auto reordered = XRankEngine::Build(DeepClusteredCollection(), options);
  ASSERT_TRUE(reordered.ok()) << reordered.status();

  // Same postings, tighter gaps: the delta-coded kinds must not grow, and
  // DIL (pure document-ordered lists) must strictly shrink on this
  // deliberately scattered clustered corpus.
  for (IndexKind kind : {IndexKind::kDil, IndexKind::kRdil, IndexKind::kHdil}) {
    const uint64_t before = (*identity)->index_stats(kind).list_used_bytes;
    const uint64_t after = (*reordered)->index_stats(kind).list_used_bytes;
    EXPECT_LE(after, before) << index::IndexKindName(kind);
  }
  EXPECT_LT((*reordered)->index_stats(IndexKind::kDil).list_used_bytes,
            (*identity)->index_stats(IndexKind::kDil).list_used_bytes);
}

// --- persistence and validation ---------------------------------------------

TEST(ReorderTest, ReopenRederivesTheSamePermutation) {
  std::string dir = FreshDir("reopen");
  EngineOptions options = AllIndexOptions();
  options.indexes = {IndexKind::kDil, IndexKind::kHdil};
  options.disk_dir = dir;
  options.build.reorder = BpOptions();

  std::vector<std::vector<uint32_t>> built_perm;
  std::vector<EngineResponse> built_responses;
  const std::vector<std::vector<std::string>> queries = ClusterQueries();
  {
    auto engine = XRankEngine::Build(ClusteredCollection(), options);
    ASSERT_TRUE(engine.ok()) << engine.status();
    built_perm.push_back((*engine)->doc_permutation().new_to_old);
    ASSERT_FALSE(built_perm.back().empty());
    for (const auto& keywords : queries) {
      auto response = (*engine)->QueryKeywords(keywords, 50, IndexKind::kHdil);
      ASSERT_TRUE(response.ok()) << response.status();
      built_responses.push_back(std::move(response).value());
    }
  }

  // Open must re-derive the identical permutation from the committed
  // reorder id (the caller supplies the same knobs as the build) and serve
  // bitwise-identical results.
  auto reopened = XRankEngine::Open(ClusteredCollection(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->doc_permutation().new_to_old, built_perm.front());
  for (size_t q = 0; q < queries.size(); ++q) {
    const EngineResponse& expected = built_responses[q];
    auto actual = (*reopened)->QueryKeywords(queries[q], 50, IndexKind::kHdil);
    ASSERT_TRUE(actual.ok()) << actual.status();
    ASSERT_EQ(actual->results.size(), expected.results.size()) << queries[q][0];
    for (size_t i = 0; i < actual->results.size(); ++i) {
      EXPECT_EQ(actual->results[i].id, expected.results[i].id)
          << queries[q][0];
      EXPECT_EQ(actual->results[i].rank, expected.results[i].rank)
          << queries[q][0];
      EXPECT_EQ(actual->results[i].document_uri,
                expected.results[i].document_uri)
          << queries[q][0];
    }
  }

  // The committed header and MANIFEST record the pass id.
  auto manifest = index::ReadManifestFile(dir);
  ASSERT_TRUE(manifest.ok()) << manifest.status();
  for (const auto& entry : manifest->entries) {
    EXPECT_EQ(entry.format.reorder_id, index::kReorderBp) << entry.file;
  }
  auto file = storage::PageFile::OpenOnDisk(dir + "/DIL.xrank");
  ASSERT_TRUE(file.ok()) << file.status();
  auto opened = index::OpenIndex(std::move(*file));
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ(opened->lexicon.format_spec().reorder_id, index::kReorderBp);
}

TEST(ReorderCorruptionTest, UnknownReorderIdIsRefused) {
  index::PostingFormatSpec spec;
  spec.reorder_id = index::kMaxReorderId + 1;
  auto resolved = index::ResolvePostingCodec(spec);
  ASSERT_FALSE(resolved.ok());
  EXPECT_EQ(resolved.status().code(), StatusCode::kCorruption);
}

TEST(ReorderCorruptionTest, ManifestRoundTripsAndValidatesReorderToken) {
  index::Manifest manifest;
  index::ManifestEntry entry;
  entry.file = "DIL.xrank";
  entry.kind = IndexKind::kDil;
  entry.page_count = 3;
  entry.crc = 0x1234;
  entry.format.reorder_id = index::kReorderBp;
  manifest.entries.push_back(entry);

  auto parsed = index::ParseManifest(index::SerializeManifest(manifest));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->entries.size(), 1u);
  EXPECT_EQ(parsed->entries[0].format.reorder_id, index::kReorderBp);

  // An unknown pass id must fail parse (same policy as unknown codecs).
  manifest.entries[0].format.reorder_id = index::kMaxReorderId + 1;
  auto bad = index::ParseManifest(index::SerializeManifest(manifest));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
}

TEST(ReorderCorruptionTest, MixedReorderIdsAcrossEntriesRefusedAtOpen) {
  std::string dir = FreshDir("mixed");
  EngineOptions options = AllIndexOptions();
  options.indexes = {IndexKind::kDil, IndexKind::kHdil};
  options.disk_dir = dir;
  options.build.reorder = BpOptions();
  {
    auto engine = XRankEngine::Build(ClusteredCollection(), options);
    ASSERT_TRUE(engine.ok()) << engine.status();
  }
  // Rewrite the MANIFEST claiming one base entry was built identity-ordered
  // while the other was reordered: Open must refuse the directory.
  auto manifest = index::ReadManifestFile(dir);
  ASSERT_TRUE(manifest.ok()) << manifest.status();
  ASSERT_GE(manifest->entries.size(), 2u);
  manifest->entries[0].format.reorder_id = index::kReorderIdentity;
  ASSERT_TRUE(index::WriteManifestFile(dir, *manifest).ok());

  auto reopened = XRankEngine::Open(ClusteredCollection(), options);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST(ReorderCorruptionTest, ShardingFileRoundTripsAndValidatesReorder) {
  core::ShardingManifest manifest;
  manifest.shards.push_back({"shard-0000", 0, 4});
  manifest.reorder_id = index::kReorderBp;
  std::string blob = core::SerializeShardingManifest(manifest);
  auto parsed = core::ParseShardingManifest(blob);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->reorder_id, index::kReorderBp);

  // Identity serializes without the token, keeping legacy files bitwise
  // unchanged.
  manifest.reorder_id = 0;
  EXPECT_EQ(core::SerializeShardingManifest(manifest).find("reorder"),
            std::string::npos);

  // An unknown pass id is refused.
  manifest.reorder_id = index::kMaxReorderId + 1;
  auto bad =
      core::ParseShardingManifest(core::SerializeShardingManifest(manifest));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
}

// --- sharded parity ---------------------------------------------------------

TEST(ReorderTest, ShardedReorderMatchesReorderedMonolith) {
  EngineOptions engine_options = AllIndexOptions();
  engine_options.indexes = {IndexKind::kDil, IndexKind::kHdil};
  engine_options.build.reorder = BpOptions();

  auto monolith = XRankEngine::Build(ClusteredCollection(), engine_options);
  ASSERT_TRUE(monolith.ok()) << monolith.status();
  ASSERT_FALSE((*monolith)->doc_permutation().empty());

  for (size_t shards : {1u, 4u}) {
    core::ShardRouterOptions router_options;
    router_options.num_shards = shards;
    router_options.engine = engine_options;
    auto router =
        core::ShardRouter::Build(ClusteredCollection(), router_options);
    ASSERT_TRUE(router.ok()) << shards << " shards: " << router.status();

    for (const auto& keywords : ClusterQueries()) {
      for (IndexKind kind : {IndexKind::kDil, IndexKind::kHdil}) {
        auto expected = (*monolith)->QueryKeywords(keywords, 10, kind);
        ASSERT_TRUE(expected.ok()) << expected.status();
        auto actual = (*router)->QueryKeywords(keywords, 10, kind);
        ASSERT_TRUE(actual.ok()) << actual.status();
        std::ostringstream what;
        what << shards << " shards kind " << index::IndexKindName(kind)
             << " query " << keywords[0];
        ASSERT_EQ(actual->results.size(), expected->results.size())
            << what.str();
        for (size_t i = 0; i < actual->results.size(); ++i) {
          EXPECT_EQ(actual->results[i].id, expected->results[i].id)
              << what.str() << " result " << i;
          EXPECT_EQ(actual->results[i].rank, expected->results[i].rank)
              << what.str() << " result " << i;
          EXPECT_EQ(actual->results[i].document_uri,
                    expected->results[i].document_uri)
              << what.str() << " result " << i;
        }
      }
    }
  }
}

// --- live updates on a reordered base ---------------------------------------

TEST(ReorderTest, LiveAddDeleteCompactOnReorderedEngine) {
  std::string dir = FreshDir("live");
  EngineOptions options = AllIndexOptions();
  options.indexes = {IndexKind::kDil, IndexKind::kHdil};
  options.disk_dir = dir;
  options.build.reorder = BpOptions();
  options.max_delta_documents = 64;
  options.flush_delta_documents = 64;
  options.compact_segment_count = 0;

  auto engine = XRankEngine::Build(ClusteredCollection(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_FALSE((*engine)->doc_permutation().empty());

  // Live documents land past the permuted base range and are served
  // alongside it.
  ASSERT_TRUE((*engine)
                  ->AddDocument("live0.xml",
                                "<doc><body>shared corpus livefresh</body></doc>")
                  .ok());
  auto mixed = (*engine)->QueryKeywords({"shared"}, 400, IndexKind::kDil);
  ASSERT_TRUE(mixed.ok()) << mixed.status();
  EXPECT_EQ(mixed->results.size(),
            size_t{kClusters * kDocsPerCluster + 1});
  auto live_only =
      (*engine)->QueryKeywords({"livefresh"}, 10, IndexKind::kDil);
  ASSERT_TRUE(live_only.ok());
  ASSERT_FALSE(live_only->results.empty());
  EXPECT_EQ(live_only->results[0].document_uri, "live0.xml");

  // Deleting a base document by URI filters the right (physical) doc.
  ASSERT_TRUE((*engine)->DeleteDocument("c2m3.xml").ok());
  auto deleted = (*engine)->QueryKeywords({"unique2x3"}, 10, IndexKind::kDil);
  ASSERT_TRUE(deleted.ok());
  EXPECT_TRUE(deleted->results.empty());

  // Reopen: WAL replay must map the stored identity doc id back through
  // the re-derived permutation.
  engine->reset();
  auto reopened = XRankEngine::Open(ClusteredCollection(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto after_open =
      (*reopened)->QueryKeywords({"unique2x3"}, 10, IndexKind::kDil);
  ASSERT_TRUE(after_open.ok());
  EXPECT_TRUE(after_open->results.empty());
  auto live_again =
      (*reopened)->QueryKeywords({"livefresh"}, 10, IndexKind::kDil);
  ASSERT_TRUE(live_again.ok());
  ASSERT_FALSE(live_again->results.empty());

  // Compaction rebuilds the physical indexes with the deleted document
  // gone; results for the survivors are unchanged.
  auto before = (*reopened)->QueryKeywords({"shared"}, 400, IndexKind::kHdil);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE((*reopened)->CompactDeletions().ok());
  auto after = (*reopened)->QueryKeywords({"shared"}, 400, IndexKind::kHdil);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->results.size(), before->results.size());
  for (size_t i = 0; i < after->results.size(); ++i) {
    EXPECT_EQ(after->results[i].document_uri,
              before->results[i].document_uri)
        << i;
    EXPECT_NEAR(after->results[i].rank, before->results[i].rank, 1e-9) << i;
  }
  auto gone = (*reopened)->QueryKeywords({"unique2x3"}, 10, IndexKind::kDil);
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone->results.empty());
}

}  // namespace
}  // namespace xrank
