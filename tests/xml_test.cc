// Unit tests for the hand-written XML lexer/parser/serializer.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "common/random.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xrank::xml {
namespace {

TEST(ParserTest, MinimalDocument) {
  auto doc = ParseDocument("<a/>", "t");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root->name(), "a");
  EXPECT_TRUE(doc->root->children().empty());
  EXPECT_EQ(doc->uri, "t");
}

TEST(ParserTest, NestedElementsAndText) {
  auto doc = ParseDocument("<a><b>hello</b><c>world</c></a>", "t");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_EQ(doc->root->children().size(), 2u);
  const Node* b = doc->root->FindChildElement("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->DirectText(), "hello");
  EXPECT_EQ(doc->root->DeepText(), "hello world");
}

TEST(ParserTest, Attributes) {
  auto doc = ParseDocument(
      R"(<workshop date="28 July 2000" venue='sigir'/>)", "t");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_EQ(doc->root->attributes().size(), 2u);
  const std::string* date = doc->root->FindAttribute("date");
  ASSERT_NE(date, nullptr);
  EXPECT_EQ(*date, "28 July 2000");
  EXPECT_EQ(*doc->root->FindAttribute("venue"), "sigir");
  EXPECT_EQ(doc->root->FindAttribute("missing"), nullptr);
}

TEST(ParserTest, EntitiesDecoded) {
  auto doc = ParseDocument("<a attr='&lt;x&gt;'>&amp;&quot;&apos;&#65;&#x42;</a>", "t");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root->DirectText(), "&\"'AB");
  EXPECT_EQ(*doc->root->FindAttribute("attr"), "<x>");
}

TEST(ParserTest, NumericEntityUtf8) {
  auto doc = ParseDocument("<a>&#233;&#x4E2D;</a>", "t");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root->DirectText(), "\xC3\xA9\xE4\xB8\xAD");
}

TEST(ParserTest, CommentsAndPIsSkipped) {
  auto doc = ParseDocument(
      "<?xml version=\"1.0\"?><!-- c --><a><!-- x -->text<?pi data?></a>", "t");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root->DirectText(), "text");
}

TEST(ParserTest, DoctypeSkipped) {
  auto doc = ParseDocument(
      "<!DOCTYPE site [ <!ELEMENT a (#PCDATA)> ]><a>x</a>", "t");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root->name(), "a");
}

TEST(ParserTest, CdataIsText) {
  auto doc = ParseDocument("<a><![CDATA[<not> & parsed]]></a>", "t");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root->DirectText(), "<not> & parsed");
}

TEST(ParserTest, WhitespaceOnlyTextIgnored) {
  auto doc = ParseDocument("<a>\n  <b>x</b>\n  \t</a>", "t");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_EQ(doc->root->children().size(), 1u);
  EXPECT_TRUE(doc->root->children()[0]->is_element());
}

TEST(ParserTest, MismatchedTagIsError) {
  auto doc = ParseDocument("<a><b></a></b>", "t");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
  EXPECT_NE(doc.status().message().find("line"), std::string::npos);
}

TEST(ParserTest, UnclosedRootIsError) {
  EXPECT_FALSE(ParseDocument("<a><b>x</b>", "t").ok());
}

TEST(ParserTest, SecondRootIsError) {
  EXPECT_FALSE(ParseDocument("<a/><b/>", "t").ok());
}

TEST(ParserTest, TextOutsideRootIsError) {
  EXPECT_FALSE(ParseDocument("<a/>stray", "t").ok());
}

TEST(ParserTest, EmptyInputIsError) {
  EXPECT_FALSE(ParseDocument("", "t").ok());
  EXPECT_FALSE(ParseDocument("   \n ", "t").ok());
}

TEST(ParserTest, BadEntityIsError) {
  EXPECT_FALSE(ParseDocument("<a>&nosuch;</a>", "t").ok());
  EXPECT_FALSE(ParseDocument("<a>&#xZZ;</a>", "t").ok());
}

TEST(ParserTest, MissingAttributeQuoteIsError) {
  EXPECT_FALSE(ParseDocument("<a x=1/>", "t").ok());
  EXPECT_FALSE(ParseDocument("<a x='1/>", "t").ok());
}

TEST(NodeTest, CountsAndDepth) {
  auto doc = ParseDocument("<a><b><c>x</c></b><d/></a>", "t");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->CountElements(), 4u);
  EXPECT_EQ(doc->root->ElementDepth(), 3u);
}

TEST(SerializerTest, RoundTripCompact) {
  const char* source =
      R"(<a x="1&amp;2"><b>text &lt;here&gt;</b><c/><d>more</d></a>)";
  auto doc = ParseDocument(source, "t");
  ASSERT_TRUE(doc.ok()) << doc.status();
  std::string serialized = Serialize(*doc);
  auto reparsed = ParseDocument(serialized, "t");
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << serialized;
  EXPECT_EQ(Serialize(*reparsed), serialized);
  EXPECT_EQ(reparsed->root->DeepText(), doc->root->DeepText());
}

TEST(SerializerTest, PrettyPrints) {
  auto doc = ParseDocument("<a><b>x</b></a>", "t");
  ASSERT_TRUE(doc.ok());
  SerializeOptions options;
  options.pretty = true;
  std::string out = Serialize(*doc, options);
  EXPECT_NE(out.find("\n"), std::string::npos);
  EXPECT_NE(out.find("  <b>"), std::string::npos);
}

TEST(SerializerTest, EscapesSpecials) {
  EXPECT_EQ(EscapeText("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
}

// Property: serialize(parse(x)) is a fixpoint for generated random trees.
class XmlRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XmlRoundTripTest, SerializeParseFixpoint) {
  xrank::Random rng(GetParam());
  // Build a random tree directly.
  std::function<std::unique_ptr<Node>(size_t)> build =
      [&](size_t depth) -> std::unique_ptr<Node> {
    auto node = Node::MakeElement("n" + std::to_string(rng.Uniform(5)));
    if (rng.Bernoulli(0.5)) {
      node->AddAttribute("a" + std::to_string(rng.Uniform(3)),
                         "v<&>" + std::to_string(rng.Uniform(100)));
    }
    size_t children = rng.Uniform(depth == 0 ? 1 : 4);
    for (size_t i = 0; i < children; ++i) {
      if (rng.Bernoulli(0.4)) {
        node->AddChild(Node::MakeText("word" + std::to_string(rng.Uniform(50)) +
                                      " & <tail>"));
      } else {
        node->AddChild(build(depth - 1));
      }
    }
    return node;
  };
  for (int trial = 0; trial < 20; ++trial) {
    Document doc;
    doc.uri = "random";
    doc.root = build(4);
    std::string one = Serialize(doc);
    auto parsed = ParseDocument(one, "random");
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << one;
    EXPECT_EQ(Serialize(*parsed), one);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripTest,
                         ::testing::Values(17, 23, 42, 99));

}  // namespace
}  // namespace xrank::xml
