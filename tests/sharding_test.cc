// Document-sharded serving (core/shard_router.h): the SHARDING root
// manifest, the scatter-gather parity contract (sharded == monolithic,
// bitwise, for every shard count / codec / aggregation / semantics), the
// θ-forwarding work-saving property, fleet-coherent stats, disk round-trip
// through Build/Open, tail-shard live ingest, and deadline/partial
// semantics. The ShardRouterConcurrencyTest suite runs under TSan in CI
// (tools/check_sharding.sh).

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/shard_router.h"
#include "datagen/dblp_gen.h"
#include "datagen/workload.h"
#include "index/codec.h"
#include "query/query.h"
#include "query/scoring.h"
#include "query/trace.h"
#include "xml/parser.h"

namespace xrank::core {
namespace {

using index::IndexKind;
using query::MergeAlgorithm;
using query::QueryOptions;
using query::QueryStats;
using query::QuerySemantics;
using query::RankAggregation;

// xml::Document is move-only, so oracle and router corpora are regenerated
// from the same seed instead of copied.
datagen::Corpus MakeCorpus(size_t num_papers = 32) {
  datagen::DblpOptions options;
  options.num_papers = num_papers;
  options.seed = 7;
  options.planted_sets = 4;
  options.mean_citations = 3.0;  // inter-document links cross shard cuts
  return datagen::GenerateDblp(options);
}

std::vector<std::vector<std::string>> MakeWorkload(
    const datagen::PlantedTerms& planted) {
  datagen::WorkloadOptions high;
  high.num_queries = 3;
  high.num_keywords = 2;
  high.mode = datagen::CorrelationMode::kHigh;
  high.seed = 3;
  std::vector<std::vector<std::string>> queries =
      datagen::MakeQueries(planted, high);
  datagen::WorkloadOptions low = high;
  low.mode = datagen::CorrelationMode::kLow;
  low.seed = 4;
  for (auto& q : datagen::MakeQueries(planted, low)) {
    queries.push_back(std::move(q));
  }
  return queries;
}

// Bitwise response equality: ids, ranks (EXPECT_EQ on the doubles — no
// tolerance), decoration, and order (i.e. tie-breaks) must all agree.
void ExpectSameResults(const EngineResponse& expected,
                       const EngineResponse& actual, const std::string& what) {
  ASSERT_EQ(expected.results.size(), actual.results.size()) << what;
  for (size_t i = 0; i < expected.results.size(); ++i) {
    EXPECT_EQ(expected.results[i].id, actual.results[i].id)
        << what << " result " << i;
    EXPECT_EQ(expected.results[i].rank, actual.results[i].rank)
        << what << " result " << i;
    EXPECT_EQ(expected.results[i].element_tag, actual.results[i].element_tag)
        << what << " result " << i;
    EXPECT_EQ(expected.results[i].document_uri,
              actual.results[i].document_uri)
        << what << " result " << i;
  }
}

// --- SHARDING manifest round-trip and validation ----------------------------

TEST(ShardingManifestTest, DirNamesAreZeroPadded) {
  EXPECT_EQ(ShardDirName(0), "shard-0000");
  EXPECT_EQ(ShardDirName(7), "shard-0007");
  EXPECT_EQ(ShardDirName(123), "shard-0123");
}

TEST(ShardingManifestTest, SerializeParseRoundTrip) {
  ShardingManifest manifest;
  manifest.shards.push_back({"shard-0000", 0, 10});
  manifest.shards.push_back({"shard-0001", 10, 3});
  manifest.shards.push_back({"shard-0002", 13, 7});

  auto parsed = ParseShardingManifest(SerializeShardingManifest(manifest));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->shards.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(parsed->shards[i].dir, manifest.shards[i].dir);
    EXPECT_EQ(parsed->shards[i].doc_base, manifest.shards[i].doc_base);
    EXPECT_EQ(parsed->shards[i].doc_count, manifest.shards[i].doc_count);
  }
}

TEST(ShardingManifestTest, ParseRejectsTamperedBytes) {
  ShardingManifest manifest;
  manifest.shards.push_back({"shard-0000", 0, 4});
  std::string blob = SerializeShardingManifest(manifest);

  // Flip one byte inside a committed line: the CRC trailer must notice.
  std::string tampered = blob;
  tampered[tampered.find("count 4")] = 'k';
  auto result = ParseShardingManifest(tampered);
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);

  // A torn file (no trailer) is refused too.
  auto torn = ParseShardingManifest(blob.substr(0, blob.size() / 2));
  EXPECT_EQ(torn.status().code(), StatusCode::kCorruption);
}

TEST(ShardingManifestTest, ParseRejectsBrokenPartitions) {
  // Gap between shards: not a contiguous cover.
  ShardingManifest gap;
  gap.shards.push_back({"shard-0000", 0, 2});
  gap.shards.push_back({"shard-0001", 3, 2});
  auto gap_result = ParseShardingManifest(SerializeShardingManifest(gap));
  EXPECT_EQ(gap_result.status().code(), StatusCode::kCorruption);

  // First shard not at document 0.
  ShardingManifest offset;
  offset.shards.push_back({"shard-0000", 1, 2});
  auto offset_result =
      ParseShardingManifest(SerializeShardingManifest(offset));
  EXPECT_EQ(offset_result.status().code(), StatusCode::kCorruption);

  // No shards at all.
  auto empty_result = ParseShardingManifest(SerializeShardingManifest({}));
  EXPECT_EQ(empty_result.status().code(), StatusCode::kCorruption);
}

TEST(ShardingFileTest, WriteReadRoundTripAndDetection) {
  std::string root = ::testing::TempDir() + "xrank_sharding_file_test";
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);

  EXPECT_FALSE(IsShardedRoot(root));
  EXPECT_EQ(ReadShardingFile(root).status().code(), StatusCode::kNotFound);

  ShardingManifest manifest;
  manifest.shards.push_back({"shard-0000", 0, 5});
  manifest.shards.push_back({"shard-0001", 5, 5});
  ASSERT_TRUE(WriteShardingFile(root, manifest).ok());
  EXPECT_TRUE(IsShardedRoot(root));

  auto read = ReadShardingFile(root);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->shards.size(), 2u);
  EXPECT_EQ(read->shards[1].doc_base, 5u);
}

// --- parity: sharded == monolithic, bitwise ---------------------------------

TEST(ShardRouterParityTest, MatchesMonolithAcrossCodecsAndShardCounts) {
  const std::vector<std::vector<std::string>> queries =
      MakeWorkload(MakeCorpus().planted);
  const uint32_t codecs[] = {index::kPostingCodecVarint,
                             index::kPostingCodecBp128,
                             index::kPostingCodecVarintGb};
  for (uint32_t codec : codecs) {
    EngineOptions engine_options;
    engine_options.indexes = {IndexKind::kHdil, IndexKind::kDil};
    engine_options.build.format.codec_id = codec;
    engine_options.scoring.semantics = QuerySemantics::kDisjunctive;

    auto monolith =
        XRankEngine::Build(MakeCorpus().documents, engine_options);
    ASSERT_TRUE(monolith.ok()) << monolith.status();

    for (size_t shards : {1u, 2u, 4u, 8u}) {
      ShardRouterOptions router_options;
      router_options.num_shards = shards;
      router_options.engine = engine_options;
      auto router = ShardRouter::Build(MakeCorpus().documents, router_options);
      ASSERT_TRUE(router.ok()) << "codec " << codec << " shards " << shards
                               << ": " << router.status();
      ASSERT_EQ((*router)->shard_count(), shards);

      for (const auto& keywords : queries) {
        for (IndexKind kind : {IndexKind::kHdil, IndexKind::kDil}) {
          auto expected = (*monolith)->QueryKeywords(keywords, 10, kind);
          ASSERT_TRUE(expected.ok()) << expected.status();
          auto actual = (*router)->QueryKeywords(keywords, 10, kind);
          ASSERT_TRUE(actual.ok()) << actual.status();
          std::ostringstream what;
          what << "codec " << codec << " shards " << shards << " kind "
               << static_cast<int>(kind) << " query " << keywords[0];
          ExpectSameResults(*expected, *actual, what.str());
        }
      }
    }
  }
}

TEST(ShardRouterParityTest, MatchesMonolithAcrossSemanticsAndAggregations) {
  const std::vector<std::vector<std::string>> queries =
      MakeWorkload(MakeCorpus().planted);
  for (QuerySemantics semantics :
       {QuerySemantics::kConjunctive, QuerySemantics::kDisjunctive}) {
    for (RankAggregation aggregation :
         {RankAggregation::kMax, RankAggregation::kSum}) {
      EngineOptions engine_options;
      engine_options.indexes = {IndexKind::kHdil};
      engine_options.scoring.semantics = semantics;
      engine_options.scoring.aggregation = aggregation;

      auto monolith =
          XRankEngine::Build(MakeCorpus().documents, engine_options);
      ASSERT_TRUE(monolith.ok()) << monolith.status();

      // 3 shards: 32 documents do not divide evenly, exercising the
      // uneven-partition arithmetic.
      ShardRouterOptions router_options;
      router_options.num_shards = 3;
      router_options.engine = engine_options;
      auto router = ShardRouter::Build(MakeCorpus().documents, router_options);
      ASSERT_TRUE(router.ok()) << router.status();

      // kAuto picks the pruned path; kExhaustive is the oracle. Both must
      // match the monolith running the same algorithm.
      for (MergeAlgorithm algorithm :
           {MergeAlgorithm::kAuto, MergeAlgorithm::kExhaustive}) {
        QueryOptions query_options;
        query_options.algorithm = algorithm;
        for (const auto& keywords : queries) {
          auto expected = (*monolith)->QueryKeywords(keywords, 10,
                                                     IndexKind::kHdil,
                                                     query_options);
          ASSERT_TRUE(expected.ok()) << expected.status();
          auto actual = (*router)->QueryKeywords(keywords, 10,
                                                 IndexKind::kHdil,
                                                 query_options);
          ASSERT_TRUE(actual.ok()) << actual.status();
          std::ostringstream what;
          what << "semantics " << static_cast<int>(semantics)
               << " aggregation " << static_cast<int>(aggregation)
               << " algorithm " << static_cast<int>(algorithm);
          ExpectSameResults(*expected, *actual, what.str());
        }
      }
    }
  }
}

TEST(ShardRouterParityTest, FreeTextQueryMatchesMonolith) {
  EngineOptions engine_options;
  auto monolith = XRankEngine::Build(MakeCorpus().documents, engine_options);
  ASSERT_TRUE(monolith.ok()) << monolith.status();

  ShardRouterOptions router_options;
  router_options.num_shards = 4;
  router_options.engine = engine_options;
  auto router = ShardRouter::Build(MakeCorpus().documents, router_options);
  ASSERT_TRUE(router.ok()) << router.status();

  const auto quad = MakeCorpus().planted.high_correlation[0];
  const std::string text = quad[0] + " " + quad[1];
  auto expected = (*monolith)->Query(text, 10, IndexKind::kHdil);
  ASSERT_TRUE(expected.ok()) << expected.status();
  auto actual = (*router)->Query(text, 10, IndexKind::kHdil);
  ASSERT_TRUE(actual.ok()) << actual.status();
  ExpectSameResults(*expected, *actual, "free-text");
  EXPECT_FALSE(actual->results.empty());
}

TEST(ShardRouterParityTest, BuildRejectsDegeneratePartitions) {
  ShardRouterOptions options;
  options.num_shards = 0;
  EXPECT_EQ(ShardRouter::Build(MakeCorpus(4).documents, options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  options.num_shards = 5;
  EXPECT_EQ(ShardRouter::Build(MakeCorpus(4).documents, options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  options.num_shards = 2;
  EXPECT_EQ(ShardRouter::Build({}, options).status().code(),
            StatusCode::kInvalidArgument);
}

// --- θ forwarding ------------------------------------------------------------

// A corpus engineered so shard 0 owns the winners: its documents are tiny
// (few elements -> large ElemRank share, shallow -> little decay), while
// later shards hold fat documents whose thousands of deep, low-rank
// occurrences can only be pruned once shard 0's θ is known.
std::vector<xml::Document> MakeSkewedCorpus() {
  std::vector<xml::Document> documents;
  for (int d = 0; d < 16; ++d) {
    std::string xml;
    if (d < 4) {
      xml = "<paper><title>alpha beta</title></paper>";
    } else {
      xml = "<paper>";
      for (int i = 0; i < 300; ++i) {
        xml += "<sec><p>alpha beta filler" + std::to_string(i) + "</p></sec>";
      }
      xml += "</paper>";
    }
    auto doc = xml::ParseDocument(xml, "doc-" + std::to_string(d) + ".xml");
    EXPECT_TRUE(doc.ok()) << doc.status();
    documents.push_back(std::move(doc).value());
  }
  return documents;
}

ShardRouterOptions SkewedRouterOptions(bool forward_theta) {
  ShardRouterOptions options;
  options.num_shards = 4;
  options.engine.scoring.semantics = QuerySemantics::kDisjunctive;
  options.forward_theta = forward_theta;
  // Shard order is the θ propagation order, so the assertion "later shards
  // inherit shard 0's bound" is deterministic.
  options.sequential_scatter = true;
  return options;
}

TEST(ShardRouterThetaTest, ForwardedThresholdPrunesLaterShards) {
  const std::vector<std::string> keywords = {"alpha", "beta"};

  auto forwarding = ShardRouter::Build(MakeSkewedCorpus(),
                                       SkewedRouterOptions(true));
  ASSERT_TRUE(forwarding.ok()) << forwarding.status();
  std::vector<QueryStats> forwarded_stats;
  auto forwarded = (*forwarding)->QueryKeywords(keywords, 3, IndexKind::kHdil,
                                                QueryOptions{},
                                                &forwarded_stats);
  ASSERT_TRUE(forwarded.ok()) << forwarded.status();
  ASSERT_EQ(forwarded_stats.size(), 4u);

  // Shard 0 established θ, so shards 1..3 must do the pruning.
  auto pruned = [](const QueryStats& stats) {
    return stats.blocks_pruned + stats.docs_skipped + stats.pages_skipped;
  };
  uint64_t later_pruned = 0;
  for (size_t i = 1; i < 4; ++i) later_pruned += pruned(forwarded_stats[i]);
  EXPECT_GT(later_pruned, pruned(forwarded_stats[0]));
  EXPECT_GT((*forwarding)->router_counters().theta_raises, 0u);

  // Against a non-forwarding router: identical results (θ is purely a
  // work-saving channel), strictly less scanning with the floor shared.
  auto isolated = ShardRouter::Build(MakeSkewedCorpus(),
                                     SkewedRouterOptions(false));
  ASSERT_TRUE(isolated.ok()) << isolated.status();
  std::vector<QueryStats> isolated_stats;
  auto baseline = (*isolated)->QueryKeywords(keywords, 3, IndexKind::kHdil,
                                             QueryOptions{}, &isolated_stats);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ExpectSameResults(*baseline, *forwarded, "theta on/off");
  EXPECT_LT(forwarded->stats.postings_scanned,
            baseline->stats.postings_scanned);
  EXPECT_EQ((*isolated)->router_counters().theta_raises, 0u);

  // The winners really live in shard 0 (the premise of the skew).
  ASSERT_FALSE(forwarded->results.empty());
  EXPECT_LT(forwarded->results[0].id.components()[0], 4u);
}

// --- stats and observability -------------------------------------------------

TEST(ShardRouterStatsTest, MergedStatsAreTheSumOfShardStats) {
  ShardRouterOptions options;
  options.num_shards = 4;
  options.engine.scoring.semantics = QuerySemantics::kDisjunctive;
  auto router = ShardRouter::Build(MakeCorpus().documents, options);
  ASSERT_TRUE(router.ok()) << router.status();

  const auto quad = MakeCorpus().planted.low_correlation[0];
  std::vector<QueryStats> per_shard;
  auto response = (*router)->QueryKeywords({quad[0], quad[1]}, 10,
                                           IndexKind::kHdil, QueryOptions{},
                                           &per_shard);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(per_shard.size(), 4u);

  QueryStats sum;
  for (const QueryStats& stats : per_shard) {
    query::MergeQueryStats(&sum, stats);
  }
  const QueryStats& merged = response->stats;
  EXPECT_EQ(merged.postings_scanned, sum.postings_scanned);
  EXPECT_EQ(merged.pages_skipped, sum.pages_skipped);
  EXPECT_EQ(merged.btree_probes, sum.btree_probes);
  EXPECT_EQ(merged.hash_probes, sum.hash_probes);
  EXPECT_EQ(merged.rounds, sum.rounds);
  EXPECT_EQ(merged.blocks_pruned, sum.blocks_pruned);
  EXPECT_EQ(merged.docs_skipped, sum.docs_skipped);
  EXPECT_EQ(merged.pivot_advances, sum.pivot_advances);
  EXPECT_EQ(merged.block_cache_hits, sum.block_cache_hits);
  EXPECT_EQ(merged.sequential_reads, sum.sequential_reads);
  EXPECT_EQ(merged.random_reads, sum.random_reads);
  EXPECT_DOUBLE_EQ(merged.io_cost, sum.io_cost);
  EXPECT_FALSE(merged.partial);
  EXPECT_FALSE(merged.algorithm.empty());
  EXPECT_GT(merged.postings_scanned, 0u);

  ShardRouter::RouterCounters counters = (*router)->router_counters();
  EXPECT_EQ(counters.queries, 1u);
  EXPECT_EQ(counters.shard_queries, 4u);
  EXPECT_EQ(counters.errors, 0u);

  // θ-forwarded scatters bypass every shard's result cache — a truncated
  // per-shard top-k must never be cached (or served) as that shard's own.
  XRankEngine::ServingCounters serving =
      (*router)->serving_counters(IndexKind::kHdil);
  EXPECT_EQ(serving.result_cache_lookups, 0u);
}

TEST(ShardRouterStatsTest, TraceSplicesPerShardSpans) {
  ShardRouterOptions options;
  options.num_shards = 2;
  auto router = ShardRouter::Build(MakeCorpus(8).documents, options);
  ASSERT_TRUE(router.ok()) << router.status();

  const auto quad = MakeCorpus(8).planted.high_correlation[0];
  query::QueryTrace trace;
  QueryOptions query_options;
  query_options.trace = &trace;
  auto response = (*router)->QueryKeywords({quad[0], quad[1]}, 5,
                                           IndexKind::kHdil, query_options);
  ASSERT_TRUE(response.ok()) << response.status();

  bool saw_shard0 = false;
  bool saw_shard1 = false;
  for (const query::QueryTrace::Span& span : trace.spans()) {
    if (span.name == "shard[0]") saw_shard0 = true;
    if (span.name == "shard[1]") saw_shard1 = true;
  }
  EXPECT_TRUE(saw_shard0);
  EXPECT_TRUE(saw_shard1);
  bool saw_shard_count = false;
  for (const auto& [key, value] : trace.annotations()) {
    if (key == "shards" && value == "2") saw_shard_count = true;
  }
  EXPECT_TRUE(saw_shard_count);
}

// --- disk round-trip ---------------------------------------------------------

TEST(ShardRouterDiskTest, BuildOpenRoundTripAndCorruptionDetection) {
  std::string root = ::testing::TempDir() + "xrank_shard_root_test";
  std::filesystem::remove_all(root);

  ShardRouterOptions options;
  options.num_shards = 3;
  options.root_dir = root;

  const auto quad = MakeCorpus().planted.high_correlation[0];
  const std::vector<std::string> keywords = {quad[0], quad[1]};

  EngineResponse expected;
  {
    auto built = ShardRouter::Build(MakeCorpus().documents, options);
    ASSERT_TRUE(built.ok()) << built.status();
    auto response = (*built)->QueryKeywords(keywords, 10, IndexKind::kHdil);
    ASSERT_TRUE(response.ok()) << response.status();
    expected = std::move(response).value();
    ASSERT_FALSE(expected.results.empty());
  }
  ASSERT_TRUE(IsShardedRoot(root));
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::filesystem::exists(root + "/" + ShardDirName(i)));
  }

  // Reopen follows the committed SHARDING file and serves identically.
  {
    auto reopened = ShardRouter::Open(MakeCorpus().documents, options);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    EXPECT_EQ((*reopened)->shard_count(), 3u);
    auto response = (*reopened)->QueryKeywords(keywords, 10, IndexKind::kHdil);
    ASSERT_TRUE(response.ok()) << response.status();
    ExpectSameResults(expected, *response, "reopen");
  }

  // A corpus whose size disagrees with the committed partition is refused.
  {
    auto wrong = ShardRouter::Open(MakeCorpus(8).documents, options);
    EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);
  }

  // One flipped byte inside SHARDING fails the CRC: corruption, not a
  // silently mis-partitioned router.
  {
    std::string path = root + "/" + std::string(kShardingFileName);
    std::ifstream in(path, std::ios::binary);
    std::string blob((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    size_t pos = blob.find("count");
    ASSERT_NE(pos, std::string::npos);
    blob[pos] = 'k';
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << blob;
    out.close();
    auto corrupted = ShardRouter::Open(MakeCorpus().documents, options);
    EXPECT_EQ(corrupted.status().code(), StatusCode::kCorruption);
  }
}

// --- live ingest -------------------------------------------------------------

std::vector<xml::Document> MakeTinyCorpus() {
  std::vector<xml::Document> documents;
  for (int d = 0; d < 6; ++d) {
    auto doc = xml::ParseDocument(
        "<paper><title>base" + std::to_string(d) + " shared</title></paper>",
        "base-" + std::to_string(d) + ".xml");
    EXPECT_TRUE(doc.ok()) << doc.status();
    documents.push_back(std::move(doc).value());
  }
  return documents;
}

TEST(ShardRouterLiveTest, IngestRoutesToTailShardAndDeletesResolveAnywhere) {
  ShardRouterOptions options;
  options.num_shards = 3;
  auto router = ShardRouter::Build(MakeTinyCorpus(), options);
  ASSERT_TRUE(router.ok()) << router.status();

  ASSERT_TRUE((*router)
                  ->AddDocument("live-1.xml",
                                "<paper><title>zzzlive shared</title></paper>")
                  .ok());
  ASSERT_TRUE((*router)->WaitForMaintenance().ok());

  // The add landed in the tail shard (doc_base 4, 2 base documents), so its
  // global document id continues past the whole base corpus.
  auto response = (*router)->QueryKeywords({"zzzlive"}, 5, IndexKind::kHdil);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_FALSE(response->results.empty());
  EXPECT_EQ(response->results[0].document_uri, "live-1.xml");
  EXPECT_GE(response->results[0].id.components()[0], 6u);

  // Every base document stays queryable alongside the live one.
  auto shared = (*router)->QueryKeywords({"shared"}, 10, IndexKind::kHdil);
  ASSERT_TRUE(shared.ok()) << shared.status();
  EXPECT_EQ(shared->results.size(), 7u);

  // A URI a non-tail shard's base corpus holds is refused up front — the
  // tail engine could not see the duplicate on its own.
  Status duplicate = (*router)->AddDocument(
      "base-0.xml", "<paper><title>dup</title></paper>");
  EXPECT_EQ(duplicate.code(), StatusCode::kInvalidArgument);

  // Deletes resolve the URI against whichever shard holds it.
  ASSERT_TRUE((*router)->DeleteDocument("live-1.xml").ok());
  auto gone = (*router)->QueryKeywords({"zzzlive"}, 5, IndexKind::kHdil);
  ASSERT_TRUE(gone.ok()) << gone.status();
  EXPECT_TRUE(gone->results.empty());
  ASSERT_TRUE((*router)->DeleteDocument("base-0.xml").ok());
  EXPECT_EQ((*router)->DeleteDocument("no-such.xml").code(),
            StatusCode::kNotFound);
}

// --- deadline / partial results ----------------------------------------------

TEST(ShardRouterDeadlineTest, CancelFollowsPartialResultContract) {
  ShardRouterOptions options;
  options.num_shards = 2;
  auto router = ShardRouter::Build(MakeCorpus(8).documents, options);
  ASSERT_TRUE(router.ok()) << router.status();
  const auto quad = MakeCorpus(8).planted.high_correlation[0];

  std::atomic<bool> cancel{true};
  QueryOptions query_options;
  query_options.cancel = &cancel;

  // Without partial results: the scatter fails as a whole.
  auto failed = (*router)->QueryKeywords({quad[0], quad[1]}, 5,
                                         IndexKind::kHdil, query_options);
  EXPECT_EQ(failed.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ((*router)->router_counters().deadline_exceeded, 1u);

  // With partial results: whatever the shards scanned comes back, marked.
  query_options.allow_partial_results = true;
  std::vector<QueryStats> per_shard;
  auto partial = (*router)->QueryKeywords({quad[0], quad[1]}, 5,
                                          IndexKind::kHdil, query_options,
                                          &per_shard);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_TRUE(partial->stats.partial);
  EXPECT_EQ((*router)->router_counters().partial_results, 1u);

  // An unconstrained query still succeeds afterwards.
  cancel.store(false);
  auto ok = (*router)->QueryKeywords({quad[0], quad[1]}, 5, IndexKind::kHdil,
                                     query_options);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_FALSE(ok->stats.partial);
}

// --- concurrency (TSan lane: tools/check_sharding.sh) ------------------------

TEST(ShardRouterConcurrencyTest, ParallelScattersMatchSequentialAnswers) {
  ShardRouterOptions options;
  options.num_shards = 4;
  options.engine.scoring.semantics = QuerySemantics::kDisjunctive;
  auto router = ShardRouter::Build(MakeCorpus().documents, options);
  ASSERT_TRUE(router.ok()) << router.status();

  datagen::Corpus corpus = MakeCorpus();
  std::vector<std::vector<std::string>> queries;
  for (const auto& quad : corpus.planted.high_correlation) {
    queries.push_back({quad[0], quad[1]});
  }
  for (const auto& quad : corpus.planted.low_correlation) {
    queries.push_back({quad[0], quad[1]});
  }

  std::vector<EngineResponse> expected;
  for (const auto& keywords : queries) {
    auto response = (*router)->QueryKeywords(keywords, 10, IndexKind::kHdil);
    ASSERT_TRUE(response.ok()) << response.status();
    expected.push_back(std::move(response).value());
  }

  // Concurrent scatters share the pool, the scatter mutex, and (within one
  // query) a θ floor; every thread must still see the sequential answers.
  constexpr int kThreads = 6;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t q = 0; q < queries.size() * 3; ++q) {
        const size_t i = (q + static_cast<size_t>(t)) % queries.size();
        auto response =
            (*router)->QueryKeywords(queries[i], 10, IndexKind::kHdil);
        if (!response.ok() ||
            response->results.size() != expected[i].results.size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t r = 0; r < response->results.size(); ++r) {
          if (!(response->results[r].id == expected[i].results[r].id) ||
              response->results[r].rank != expected[i].results[r].rank) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT((*router)->router_counters().queries, 0u);
}

TEST(ShardRouterConcurrencyTest, QueriesRaceSafelyWithTailIngest) {
  ShardRouterOptions options;
  options.num_shards = 3;
  auto router = ShardRouter::Build(MakeCorpus(12).documents, options);
  ASSERT_TRUE(router.ok()) << router.status();
  const auto quad = MakeCorpus(12).planted.high_correlation[0];
  const std::vector<std::string> keywords = {quad[0], quad[1]};

  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      for (int q = 0; q < 30; ++q) {
        auto response =
            (*router)->QueryKeywords(keywords, 10, IndexKind::kHdil);
        if (!response.ok()) failures.fetch_add(1);
      }
    });
  }
  for (int d = 0; d < 6; ++d) {
    Status added = (*router)->AddDocument(
        "live-" + std::to_string(d) + ".xml",
        "<paper><title>racing" + std::to_string(d) + "</title></paper>");
    if (!added.ok()) failures.fetch_add(1);
  }
  for (std::thread& client : clients) client.join();
  ASSERT_TRUE((*router)->WaitForMaintenance().ok());
  EXPECT_EQ(failures.load(), 0u);

  auto live = (*router)->QueryKeywords({"racing3"}, 5, IndexKind::kHdil);
  ASSERT_TRUE(live.ok()) << live.status();
  EXPECT_EQ(live->results.size(), 1u);
}

}  // namespace
}  // namespace xrank::core
