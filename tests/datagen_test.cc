// Tests for the synthetic corpus generators: determinism, structural shape
// (DBLP shallow/many-links, XMark deep/intra-document links), planted-term
// guarantees, Zipf distribution sanity, and workload construction.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "datagen/dblp_gen.h"
#include "datagen/html_gen.h"
#include "datagen/vocabulary.h"
#include "datagen/workload.h"
#include "datagen/xmark_gen.h"
#include "datagen/zipf.h"
#include "graph/builder.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xrank::datagen {
namespace {

graph::XmlGraph ToGraph(const Corpus& corpus, bool html = false) {
  graph::GraphBuilder builder;
  for (const xml::Document& doc : corpus.documents) {
    // Re-parse through the serializer to exercise the full pipeline.
    auto parsed = xml::ParseDocument(xml::Serialize(doc), doc.uri);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    if (html) {
      EXPECT_TRUE(builder.AddHtmlDocument(*parsed).ok());
    } else {
      EXPECT_TRUE(builder.AddDocument(*parsed).ok());
    }
  }
  auto graph = std::move(builder).Finalize();
  EXPECT_TRUE(graph.ok()) << graph.status();
  return std::move(graph).value();
}

TEST(VocabularyTest, WordsAreStableAndDistinct) {
  Vocabulary vocab(5000);
  EXPECT_EQ(vocab.Word(17), vocab.Word(17));
  std::set<std::string> words;
  for (size_t i = 0; i < 5000; ++i) words.insert(vocab.Word(i));
  // Collisions from syllable concatenation are possible but must be rare.
  EXPECT_GT(words.size(), 4950u);
}

TEST(ZipfTest, HeadIsHeavy) {
  ZipfSampler zipf(1000, 1.1);
  Random rng(42);
  std::map<size_t, size_t> counts;
  for (int i = 0; i < 20000; ++i) counts[zipf.Sample(&rng)]++;
  // Rank 0 much more frequent than rank 100.
  EXPECT_GT(counts[0], 10 * std::max<size_t>(counts[100], 1));
  // All samples in range.
  for (const auto& [rank, count] : counts) EXPECT_LT(rank, 1000u);
}

TEST(DblpGenTest, DeterministicForSeed) {
  DblpOptions options;
  options.num_papers = 30;
  Corpus a = GenerateDblp(options);
  Corpus b = GenerateDblp(options);
  ASSERT_EQ(a.documents.size(), b.documents.size());
  for (size_t i = 0; i < a.documents.size(); ++i) {
    EXPECT_EQ(xml::Serialize(a.documents[i]), xml::Serialize(b.documents[i]));
  }
}

TEST(DblpGenTest, ShapeIsShallowWithInterDocumentLinks) {
  DblpOptions options;
  options.num_papers = 150;
  Corpus corpus = GenerateDblp(options);
  EXPECT_EQ(corpus.documents.size(), 150u);
  // Depth ~4 like real DBLP records (root/field/attr-element/value).
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_LE(corpus.documents[i].root->ElementDepth(), 3u);
  }
  graph::XmlGraph graph = ToGraph(corpus);
  EXPECT_GT(graph.total_hyperlink_count(), 100u);
  // Hyperlinks are inter-document: source and target in different docs.
  size_t cross = 0, total = 0;
  for (graph::NodeId u = 0; u < graph.node_count(); ++u) {
    for (graph::NodeId v : graph.hyperlinks(u)) {
      ++total;
      if (graph.node(u).document != graph.node(v).document) ++cross;
    }
  }
  EXPECT_EQ(cross, total);
}

TEST(DblpGenTest, CitationInDegreesAreSkewed) {
  DblpOptions options;
  options.num_papers = 300;
  Corpus corpus = GenerateDblp(options);
  graph::XmlGraph graph = ToGraph(corpus);
  std::map<uint32_t, size_t> indegree;
  for (graph::NodeId u = 0; u < graph.node_count(); ++u) {
    for (graph::NodeId v : graph.hyperlinks(u)) {
      indegree[graph.node(v).document]++;
    }
  }
  size_t max_in = 0, nonzero = 0;
  for (const auto& [doc, count] : indegree) {
    max_in = std::max(max_in, count);
    ++nonzero;
  }
  // Preferential attachment: some paper far above average.
  double average =
      static_cast<double>(graph.total_hyperlink_count()) / nonzero;
  EXPECT_GT(static_cast<double>(max_in), 4.0 * average);
}

TEST(DblpGenTest, PlantedTermsPresent) {
  DblpOptions options;
  options.num_papers = 100;
  Corpus corpus = GenerateDblp(options);
  ASSERT_EQ(corpus.planted.high_correlation.size(), options.planted_sets);
  ASSERT_EQ(corpus.planted.low_correlation.size(), options.planted_sets);
  // Every high-correlation quadruple occurs (adjacently) somewhere.
  for (size_t s = 0; s < options.planted_sets; ++s) {
    const auto& quad = corpus.planted.high_correlation[s];
    bool found = false;
    for (const xml::Document& doc : corpus.documents) {
      std::string text = doc.root->DeepText();
      if (text.find(quad[0] + " " + quad[1] + " " + quad[2] + " " + quad[3]) !=
          std::string::npos) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "set " << s;
  }
  // Selectivity ladder: sel0 in every paper, deeper buckets rarer.
  ASSERT_GE(corpus.planted.selectivity_terms.size(), 3u);
  EXPECT_EQ(corpus.planted.selectivity_terms[0].second, 100u);
  EXPECT_GT(corpus.planted.selectivity_terms[0].second,
            corpus.planted.selectivity_terms[2].second);
}

TEST(DblpGenTest, LowCorrelationTermsRarelyMeet) {
  DblpOptions options;
  options.num_papers = 200;
  Corpus corpus = GenerateDblp(options);
  const auto& quad = corpus.planted.low_correlation[0];
  size_t first = 0, second = 0, both = 0;
  for (const xml::Document& doc : corpus.documents) {
    std::string text = doc.root->DeepText();
    bool has_first = text.find(quad[0]) != std::string::npos;
    bool has_second = text.find(quad[1]) != std::string::npos;
    first += has_first;
    second += has_second;
    both += has_first && has_second;
  }
  EXPECT_GT(first, 0u);
  EXPECT_GT(second, 0u);
  EXPECT_LE(both, 3u);  // only the deliberate joint papers
}

TEST(XMarkGenTest, SingleDeepDocumentWithIntraLinks) {
  XMarkOptions options;
  options.num_items = 80;
  options.num_people = 40;
  options.num_open_auctions = 50;
  options.num_closed_auctions = 25;
  Corpus corpus = GenerateXMark(options);
  ASSERT_EQ(corpus.documents.size(), 1u);
  // Deep nesting: 6 + 2 * parlist_depth >= 10.
  EXPECT_GE(corpus.documents[0].root->ElementDepth(), 9u);

  graph::XmlGraph graph = ToGraph(corpus);
  EXPECT_GT(graph.total_hyperlink_count(), 100u);
  // All links intra-document.
  for (graph::NodeId u = 0; u < graph.node_count(); ++u) {
    for (graph::NodeId v : graph.hyperlinks(u)) {
      EXPECT_EQ(graph.node(u).document, graph.node(v).document);
    }
  }
}

TEST(XMarkGenTest, IdrefsResolveToTypedTargets) {
  XMarkOptions options;
  options.num_items = 40;
  options.num_people = 20;
  options.num_open_auctions = 30;
  Corpus corpus = GenerateXMark(options);
  graph::XmlGraph graph = ToGraph(corpus);
  // personref/person attributes resolve to person elements, itemrefs to
  // items, incategory to categories.
  size_t checked = 0;
  for (graph::NodeId u = 0; u < graph.node_count(); ++u) {
    if (!graph.is_element(u)) continue;
    std::string_view tag = graph.name(u);
    for (graph::NodeId v : graph.hyperlinks(u)) {
      std::string_view target = graph.name(v);
      if (tag == "personref" || tag == "seller" || tag == "buyer") {
        EXPECT_EQ(target, "person");
        ++checked;
      } else if (tag == "itemref") {
        EXPECT_EQ(target, "item");
        ++checked;
      } else if (tag == "incategory") {
        EXPECT_EQ(target, "category");
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 50u);
}

TEST(HtmlGenTest, PagesLinkEachOther) {
  HtmlOptions options;
  options.num_pages = 30;
  Corpus corpus = GenerateHtml(options);
  EXPECT_EQ(corpus.documents.size(), 30u);
  graph::XmlGraph graph = ToGraph(corpus, /*html=*/true);
  EXPECT_EQ(graph.element_count(), 30u);  // one element per page
  EXPECT_GT(graph.total_hyperlink_count(), 20u);
}

TEST(WorkloadTest, QueriesComeFromPlantedQuadruples) {
  PlantedTerms planted;
  RegisterPlantedSets(6, &planted);
  WorkloadOptions options;
  options.num_queries = 12;
  options.num_keywords = 3;
  options.mode = CorrelationMode::kHigh;
  auto queries = MakeQueries(planted, options);
  ASSERT_EQ(queries.size(), 12u);
  for (const auto& query : queries) {
    ASSERT_EQ(query.size(), 3u);
    // All keywords from the same quadruple: same trailing set number.
    std::string suffix = query[0].substr(3);
    EXPECT_EQ(query[0], "hca" + suffix);
    EXPECT_EQ(query[1], "hcb" + suffix);
    EXPECT_EQ(query[2], "hcc" + suffix);
  }
  options.mode = CorrelationMode::kLow;
  auto low_queries = MakeQueries(planted, options);
  EXPECT_EQ(low_queries[0][0].substr(0, 2), "lc");
}

TEST(WorkloadTest, DeterministicForSeed) {
  PlantedTerms planted;
  RegisterPlantedSets(8, &planted);
  WorkloadOptions options;
  options.seed = 55;
  auto a = MakeQueries(planted, options);
  auto b = MakeQueries(planted, options);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace xrank::datagen
