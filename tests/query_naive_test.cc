// Tests for the naive baselines (paper Section 4.1/5.1): equality-merge and
// hash-probe TA correctness, spurious-ancestor behaviour (their defining
// flaw), and agreement between the two naive processors.

#include "query/naive_query.h"

#include <gtest/gtest.h>

#include <set>

#include "index/naive_index.h"
#include "test_util.h"

namespace xrank::query {
namespace {

using index::IndexKind;
using testutil::BuildIndexedCorpus;

TEST(NaiveQueryTest, ReturnsElementAndAllAncestors) {
  auto corpus = BuildIndexedCorpus(
      {{"<r><p><s>apple pear</s></p><q>unrelated</q></r>", "doc"}});
  NaiveIdQueryProcessor processor(corpus->pool(IndexKind::kNaiveId),
                                  corpus->lexicon(IndexKind::kNaiveId),
                                  ScoringOptions{});
  auto response = processor.Execute({"apple", "pear"}, 20);
  ASSERT_TRUE(response.ok()) << response.status();
  // The naive approach returns the section AND its ancestors <p>, <r> —
  // the spurious results of Section 4.1.
  std::set<dewey::DeweyId> result_deweys;
  for (const RankedResult& result : response->results) {
    uint32_t ordinal = result.id.component(0);
    result_deweys.insert(corpus->extracted.ordinal_to_dewey[ordinal]);
  }
  EXPECT_EQ(result_deweys.size(), 3u);
  EXPECT_TRUE(result_deweys.count(dewey::DeweyId({0})));        // <r>
  EXPECT_TRUE(result_deweys.count(dewey::DeweyId({0, 0})));     // <p>
  EXPECT_TRUE(result_deweys.count(dewey::DeweyId({0, 0, 0})));  // <s>
}

TEST(NaiveQueryTest, IdAndRankProcessorsAgree) {
  auto corpus = BuildIndexedCorpus({{testutil::Figure1Xml(), "figure1.xml"}});
  NaiveIdQueryProcessor by_id(corpus->pool(IndexKind::kNaiveId),
                              corpus->lexicon(IndexKind::kNaiveId),
                              ScoringOptions{});
  NaiveRankQueryProcessor by_rank(corpus->pool(IndexKind::kNaiveRank),
                                  corpus->lexicon(IndexKind::kNaiveRank),
                                  ScoringOptions{});
  for (auto keywords : std::vector<std::vector<std::string>>{
           {"xql"}, {"xql", "language"}, {"querying", "xyleme"}}) {
    auto id_response = by_id.Execute(keywords, 50);
    auto rank_response = by_rank.Execute(keywords, 50);
    ASSERT_TRUE(id_response.ok() && rank_response.ok());
    ASSERT_EQ(id_response->results.size(), rank_response->results.size())
        << keywords[0];
    for (size_t i = 0; i < id_response->results.size(); ++i) {
      EXPECT_EQ(id_response->results[i].id, rank_response->results[i].id);
      EXPECT_NEAR(id_response->results[i].rank,
                  rank_response->results[i].rank, 1e-9);
    }
  }
}

TEST(NaiveQueryTest, RankProcessorUsesHashProbes) {
  auto corpus = BuildIndexedCorpus({{testutil::Figure1Xml(), "figure1.xml"}});
  NaiveRankQueryProcessor processor(corpus->pool(IndexKind::kNaiveRank),
                                    corpus->lexicon(IndexKind::kNaiveRank),
                                    ScoringOptions{});
  auto response = processor.Execute({"xql", "language"}, 5);
  ASSERT_TRUE(response.ok());
  EXPECT_GT(response->stats.hash_probes, 0u);
}

TEST(NaiveQueryTest, DisjointKeywordsEmpty) {
  auto corpus = BuildIndexedCorpus({
      {"<a><b>left</b></a>", "d1"},
      {"<a><b>right</b></a>", "d2"},
  });
  NaiveIdQueryProcessor by_id(corpus->pool(IndexKind::kNaiveId),
                              corpus->lexicon(IndexKind::kNaiveId),
                              ScoringOptions{});
  NaiveRankQueryProcessor by_rank(corpus->pool(IndexKind::kNaiveRank),
                                  corpus->lexicon(IndexKind::kNaiveRank),
                                  ScoringOptions{});
  auto id_response = by_id.Execute({"left", "right"}, 5);
  auto rank_response = by_rank.Execute({"left", "right"}, 5);
  ASSERT_TRUE(id_response.ok() && rank_response.ok());
  EXPECT_TRUE(id_response->results.empty());
  EXPECT_TRUE(rank_response->results.empty());
}

TEST(HashIndexTest, LookupFindsAllAndOnlyMembers) {
  auto corpus = BuildIndexedCorpus({{testutil::Figure1Xml(), "figure1.xml"}});
  const index::Lexicon* lexicon = corpus->lexicon(IndexKind::kNaiveRank);
  storage::BufferPool* pool = corpus->pool(IndexKind::kNaiveRank);
  const index::TermInfo* info = lexicon->Find("xql");
  ASSERT_NE(info, nullptr);

  // Member ordinals from the extraction.
  std::set<uint32_t> members;
  for (const index::Posting& posting :
       corpus->extracted.naive_postings.at("xql")) {
    members.insert(posting.id.component(0));
  }
  ASSERT_FALSE(members.empty());
  for (uint32_t ordinal = 0;
       ordinal < corpus->extracted.ordinal_to_dewey.size(); ++ordinal) {
    auto loc = index::HashIndexLookup(pool, *info, ordinal);
    ASSERT_TRUE(loc.ok());
    EXPECT_EQ(loc->has_value(), members.count(ordinal) > 0) << ordinal;
    if (loc->has_value()) {
      // The located posting is really this element's.
      auto posting =
          index::ReadPostingAt(pool, info->list, **loc, false);
      ASSERT_TRUE(posting.ok());
      EXPECT_EQ(posting->id.component(0), ordinal);
    }
  }
}

}  // namespace
}  // namespace xrank::query
