// Tests for the storage substrate: page files (memory and disk), buffer
// pool caching/eviction, and the sequential/random cost model.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/cost_model.h"
#include "storage/page_file.h"

namespace xrank::storage {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void ExercisePageFile(PageFile* file) {
  EXPECT_EQ(file->page_count(), 0u);
  auto p0 = file->Allocate();
  auto p1 = file->Allocate();
  ASSERT_TRUE(p0.ok() && p1.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(*p1, 1u);
  EXPECT_EQ(file->page_count(), 2u);

  Page page{};
  page.WriteU32(0, 0xDEADBEEF);
  page.WriteU64(100, 0x1122334455667788ULL);
  ASSERT_TRUE(file->Write(1, page).ok());

  Page read{};
  ASSERT_TRUE(file->Read(1, &read).ok());
  EXPECT_EQ(read.ReadU32(0), 0xDEADBEEFu);
  EXPECT_EQ(read.ReadU64(100), 0x1122334455667788ULL);

  // Fresh pages are zeroed.
  ASSERT_TRUE(file->Read(0, &read).ok());
  EXPECT_EQ(read.ReadU64(0), 0u);

  // Out-of-range access fails cleanly.
  EXPECT_FALSE(file->Read(7, &read).ok());
  EXPECT_FALSE(file->Write(7, page).ok());
}

TEST(PageFileTest, InMemoryBackend) {
  auto file = PageFile::CreateInMemory();
  ExercisePageFile(file.get());
}

TEST(PageFileTest, OnDiskBackend) {
  std::string path = TempPath("pagefile_test.db");
  auto file = PageFile::CreateOnDisk(path);
  ASSERT_TRUE(file.ok()) << file.status();
  ExercisePageFile(file->get());
  ASSERT_TRUE((*file)->Sync().ok());
}

TEST(PageFileTest, ReopenPreservesContents) {
  std::string path = TempPath("pagefile_reopen.db");
  {
    auto file = PageFile::CreateOnDisk(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Allocate().ok());
    Page page{};
    page.WriteU32(42, 777);
    ASSERT_TRUE((*file)->Write(0, page).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  auto reopened = PageFile::OpenOnDisk(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->page_count(), 1u);
  Page read{};
  ASSERT_TRUE((*reopened)->Read(0, &read).ok());
  EXPECT_EQ(read.ReadU32(42), 777u);
}

TEST(PageFileTest, OpenMissingFileFails) {
  EXPECT_FALSE(PageFile::OpenOnDisk(TempPath("nonexistent.db")).ok());
}

TEST(CostModelTest, SequentialRunsDetected) {
  CostModel model;
  for (PageId p = 10; p < 20; ++p) model.RecordRead(p);
  EXPECT_EQ(model.random_reads(), 1u);  // the first read seeks
  EXPECT_EQ(model.sequential_reads(), 9u);
}

TEST(CostModelTest, InterleavedStreamsStaySequential) {
  // Two concurrently merged list scans (the DIL pattern) must each count
  // as sequential after their first page.
  CostModel model;
  for (PageId p = 0; p < 10; ++p) {
    model.RecordRead(100 + p);
    model.RecordRead(500 + p);
  }
  EXPECT_EQ(model.random_reads(), 2u);
  EXPECT_EQ(model.sequential_reads(), 18u);
}

TEST(CostModelTest, ScatteredReadsAreRandom) {
  CostModel model;
  PageId pages[] = {5, 100, 7, 300, 9, 42};
  for (PageId p : pages) model.RecordRead(p);
  EXPECT_EQ(model.random_reads(), 6u);
  EXPECT_EQ(model.sequential_reads(), 0u);
}

TEST(CostModelTest, WeightedCost) {
  CostModelOptions options;
  options.sequential_read_cost = 1.0;
  options.random_read_cost = 50.0;
  CostModel model(options);
  model.RecordRead(0);   // random
  model.RecordRead(1);   // sequential
  model.RecordRead(2);   // sequential
  EXPECT_DOUBLE_EQ(model.TotalCost(), 52.0);
  model.Reset();
  EXPECT_DOUBLE_EQ(model.TotalCost(), 0.0);
  EXPECT_EQ(model.total_reads(), 0u);
}

TEST(BufferPoolTest, CachesRepeatedReads) {
  auto file = PageFile::CreateInMemory();
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(file->Allocate().ok());
  CostModel model;
  BufferPool pool(file.get(), 16, &model);

  Page page{};
  ASSERT_TRUE(pool.Read(2, &page).ok());
  ASSERT_TRUE(pool.Read(2, &page).ok());
  ASSERT_TRUE(pool.Read(2, &page).ok());
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(model.total_reads(), 1u);
}

TEST(BufferPoolTest, DropCacheForcesPhysicalReads) {
  auto file = PageFile::CreateInMemory();
  ASSERT_TRUE(file->Allocate().ok());
  CostModel model;
  BufferPool pool(file.get(), 16, &model);
  Page page{};
  ASSERT_TRUE(pool.Read(0, &page).ok());
  pool.DropCache();
  ASSERT_TRUE(pool.Read(0, &page).ok());
  EXPECT_EQ(pool.misses(), 2u);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  auto file = PageFile::CreateInMemory();
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(file->Allocate().ok());
  CostModel model;
  BufferPool pool(file.get(), 2, &model);
  Page page{};
  ASSERT_TRUE(pool.Read(0, &page).ok());
  ASSERT_TRUE(pool.Read(1, &page).ok());
  ASSERT_TRUE(pool.Read(0, &page).ok());  // touch 0: LRU order is 0,1
  ASSERT_TRUE(pool.Read(2, &page).ok());  // evicts 1
  EXPECT_EQ(pool.cached_pages(), 2u);
  uint64_t misses = pool.misses();
  ASSERT_TRUE(pool.Read(0, &page).ok());  // still cached
  EXPECT_EQ(pool.misses(), misses);
  ASSERT_TRUE(pool.Read(1, &page).ok());  // was evicted
  EXPECT_EQ(pool.misses(), misses + 1);
}

TEST(BufferPoolTest, ShardCountSelection) {
  auto file = PageFile::CreateInMemory();
  CostModel model;
  // Small pools stay single-sharded (the deterministic eviction order above
  // relies on one CLOCK ring); big pools stripe automatically, capped.
  EXPECT_EQ(BufferPool(file.get(), 16, &model).shard_count(), 1u);
  EXPECT_EQ(BufferPool(file.get(), 512, &model).shard_count(), 4u);
  EXPECT_EQ(BufferPool(file.get(), 1 << 20, &model).shard_count(), 16u);
  // An explicit shard count wins but never exceeds the capacity.
  EXPECT_EQ(BufferPool(file.get(), 64, &model, 8).shard_count(), 8u);
  EXPECT_EQ(BufferPool(file.get(), 2, &model, 8).shard_count(), 2u);
}

// The canonical content of a page in the concurrency stress test below:
// any reader can verify a page without coordinating with other threads.
uint32_t PageStamp(PageId page) { return page * 2654435761u; }

TEST(BufferPoolTest, ConcurrentShardedAccess) {
  // The engine's serving pattern: many reader threads on a shared sharded
  // pool, cache drops interleaved (cold-cache mode), plus a writer touching
  // pages the readers never read (page files are not internally
  // synchronized, so read/write sets must be disjoint — as they are in the
  // engine, where queries only read). Run under TSan via
  // tools/run_sanitized_tests.sh.
  constexpr PageId kReaderPages = 192;
  constexpr PageId kWriterPages = 8;
  auto file = PageFile::CreateInMemory();
  for (PageId p = 0; p < kReaderPages + kWriterPages; ++p) {
    ASSERT_TRUE(file->Allocate().ok());
    Page page{};
    page.WriteU32(0, PageStamp(p));
    ASSERT_TRUE(file->Write(p, page).ok());
  }
  CostModel model;
  BufferPool pool(file.get(), 64, &model, 8);
  ASSERT_EQ(pool.shard_count(), 8u);

  constexpr int kReaders = 6;
  constexpr int kOpsPerThread = 4000;
  std::atomic<uint64_t> total_reads{0};
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      uint64_t state = 0x9E3779B97F4A7C15ull * static_cast<uint64_t>(t + 1);
      uint64_t reads = 0;
      for (int i = 0; i < kOpsPerThread; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        PageId p = static_cast<PageId>((state >> 33) % kReaderPages);
        Page page{};
        ++reads;
        if (!pool.Read(p, &page).ok() || page.ReadU32(0) != PageStamp(p)) {
          errors.fetch_add(1);
        }
      }
      total_reads.fetch_add(reads);
    });
  }
  // A writer hammers the shards through the write-through path.
  threads.emplace_back([&] {
    for (int i = 0; i < kOpsPerThread; ++i) {
      PageId p = kReaderPages + static_cast<PageId>(i % kWriterPages);
      Page page{};
      page.WriteU32(0, PageStamp(p));
      if (!pool.Write(p, page).ok()) errors.fetch_add(1);
    }
  });
  // A dropper forces misses mid-flight, as cold-cache queries do.
  threads.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      pool.DropCache();
      std::this_thread::yield();
    }
  });
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(errors.load(), 0u);
  // Every Read is accounted as exactly one hit or miss (Write counts as
  // neither), and the pool never exceeds its capacity.
  EXPECT_EQ(pool.hits() + pool.misses(), total_reads.load());
  EXPECT_GT(pool.misses(), 0u);
  EXPECT_LE(pool.cached_pages(), 64u);

  // After the dust settles the cache still serves correct bytes.
  for (PageId p = 0; p < kReaderPages + kWriterPages; ++p) {
    Page page{};
    ASSERT_TRUE(pool.Read(p, &page).ok());
    EXPECT_EQ(page.ReadU32(0), PageStamp(p));
  }
}

TEST(BufferPoolTest, WriteThroughUpdatesCache) {
  auto file = PageFile::CreateInMemory();
  ASSERT_TRUE(file->Allocate().ok());
  CostModel model;
  BufferPool pool(file.get(), 4, &model);
  Page page{};
  page.WriteU32(0, 11);
  ASSERT_TRUE(pool.Write(0, page).ok());
  Page read{};
  ASSERT_TRUE(pool.Read(0, &read).ok());
  EXPECT_EQ(read.ReadU32(0), 11u);
  EXPECT_EQ(pool.misses(), 0u);  // served from cache
  // The backing file also has the data.
  Page direct{};
  ASSERT_TRUE(file->Read(0, &direct).ok());
  EXPECT_EQ(direct.ReadU32(0), 11u);
}

}  // namespace
}  // namespace xrank::storage
