// Tests for posting-list serialization: page layout, delta encoding,
// sequential cursors, page seeks, and random slot access.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "common/random.h"
#include "index/analyzer.h"
#include "index/codec.h"
#include "index/lexicon.h"
#include "index/posting.h"
#include "storage/buffer_pool.h"

namespace xrank::index {
namespace {

using dewey::DeweyId;

std::vector<Posting> MakePostings(size_t count, uint64_t seed) {
  xrank::Random rng(seed);
  std::vector<Posting> postings;
  uint32_t doc = 0, a = 0, b = 0;
  for (size_t i = 0; i < count; ++i) {
    // Advance in Dewey order.
    b += 1 + static_cast<uint32_t>(rng.Uniform(3));
    if (b > 10) {
      b = 0;
      ++a;
    }
    if (a > 10) {
      a = 0;
      ++doc;
    }
    Posting posting;
    posting.id = DeweyId({doc, a, b});
    posting.elem_rank = static_cast<float>(rng.NextDouble());
    size_t positions = 1 + rng.Uniform(5);
    uint32_t pos = static_cast<uint32_t>(rng.Uniform(100));
    for (size_t p = 0; p < positions; ++p) {
      pos += 1 + static_cast<uint32_t>(rng.Uniform(20));
      posting.positions.push_back(pos);
    }
    postings.push_back(std::move(posting));
  }
  return postings;
}

struct ListFixture {
  std::unique_ptr<storage::PageFile> file =
      storage::PageFile::CreateInMemory();
  storage::CostModel model;
  std::unique_ptr<storage::BufferPool> pool;
  ListExtent extent;
  std::vector<PostingLocation> locations;

  void Write(const std::vector<Posting>& postings, bool delta) {
    Write(postings, DefaultPostingFormat(delta));
  }

  void Write(const std::vector<Posting>& postings,
             const PostingFormat& format) {
    PostingListWriter writer(file.get(), format);
    for (const Posting& posting : postings) {
      auto loc = writer.Add(posting);
      ASSERT_TRUE(loc.ok()) << loc.status();
      locations.push_back(*loc);
    }
    auto result = writer.Finish();
    ASSERT_TRUE(result.ok());
    extent = *result;
    pool = std::make_unique<storage::BufferPool>(file.get(), 256, &model);
  }
};

class PostingRoundTripTest : public ::testing::TestWithParam<bool> {};

TEST_P(PostingRoundTripTest, CursorReturnsAllPostings) {
  bool delta = GetParam();
  auto postings = MakePostings(3000, 5);
  ListFixture fixture;
  fixture.Write(postings, delta);
  EXPECT_EQ(fixture.extent.entry_count, postings.size());
  EXPECT_GT(fixture.extent.page_count, 1u);

  PostingListCursor cursor(fixture.pool.get(), fixture.extent, delta);
  Posting posting;
  for (size_t i = 0; i < postings.size(); ++i) {
    auto has = cursor.Next(&posting);
    ASSERT_TRUE(has.ok()) << has.status();
    ASSERT_TRUE(*has) << i;
    EXPECT_EQ(posting, postings[i]) << i;
  }
  auto has = cursor.Next(&posting);
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has);
  EXPECT_TRUE(cursor.AtEnd());
}

TEST_P(PostingRoundTripTest, RandomAccessBySlot) {
  bool delta = GetParam();
  auto postings = MakePostings(1000, 6);
  ListFixture fixture;
  fixture.Write(postings, delta);
  for (size_t i = 0; i < postings.size(); i += 37) {
    auto posting = ReadPostingAt(fixture.pool.get(), fixture.extent,
                                 fixture.locations[i], delta);
    ASSERT_TRUE(posting.ok()) << posting.status();
    EXPECT_EQ(*posting, postings[i]);
  }
  // Out-of-range access fails.
  EXPECT_FALSE(ReadPostingAt(fixture.pool.get(), fixture.extent,
                             PostingLocation{fixture.extent.page_count, 0},
                             delta)
                   .ok());
}

INSTANTIATE_TEST_SUITE_P(DeltaModes, PostingRoundTripTest,
                         ::testing::Bool());

// Round-trip property over the full format cross-product: every registered
// codec × every rank encoding × both delta modes. Ids and positions must be
// exact; ranks must equal the format's own DecodedRank prediction (which
// writers use for skip-block maxima) and stay within the documented
// quantization error bound of the original.
using FormatTuple = std::tuple<uint32_t, RankEncoding, bool>;

class CodecRoundTripTest : public ::testing::TestWithParam<FormatTuple> {
 protected:
  PostingFormat WriterFormat(const std::vector<Posting>& postings) const {
    auto [codec_id, ranks, delta] = GetParam();
    const PostingCodec* codec = FindPostingCodec(codec_id);
    EXPECT_NE(codec, nullptr);
    return MakeWriterFormat(codec, PostingFormatSpec{codec_id, ranks},
                            postings, delta);
  }
};

std::string FormatTupleName(const ::testing::TestParamInfo<FormatTuple>& info) {
  auto [codec_id, ranks, delta] = info.param;
  std::string name(FindPostingCodec(codec_id)->name());
  name += "_";
  name += RankEncodingName(ranks);
  name += delta ? "_delta" : "_raw";
  return name;
}

TEST_P(CodecRoundTripTest, CursorRoundTripsEveryFormat) {
  auto [codec_id, ranks, delta] = GetParam();
  auto postings = MakePostings(3000, 11);
  PostingFormat format = WriterFormat(postings);
  ListFixture fixture;
  fixture.Write(postings, format);
  EXPECT_EQ(fixture.extent.entry_count, postings.size());
  EXPECT_GT(fixture.extent.page_count, 1u);

  const float bound = RankQuantizationBound(ranks, format.rank_scale);
  PostingListCursor cursor(fixture.pool.get(), fixture.extent, format);
  Posting posting;
  for (size_t i = 0; i < postings.size(); ++i) {
    auto has = cursor.Next(&posting);
    ASSERT_TRUE(has.ok()) << has.status();
    ASSERT_TRUE(*has) << i;
    EXPECT_EQ(posting.id, postings[i].id) << i;
    EXPECT_EQ(posting.positions, postings[i].positions) << i;
    // Bitwise agreement with the writer-side prediction, and within the
    // documented quantization bound of the true rank (floor quantization:
    // never above it).
    EXPECT_EQ(posting.elem_rank, format.DecodedRank(postings[i].elem_rank))
        << i;
    EXPECT_LE(posting.elem_rank, postings[i].elem_rank) << i;
    EXPECT_LE(std::abs(posting.elem_rank - postings[i].elem_rank), bound)
        << i;
  }
  auto has = cursor.Next(&posting);
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has);
  EXPECT_TRUE(cursor.AtEnd());
}

TEST_P(CodecRoundTripTest, RandomAccessBySlotEveryFormat) {
  auto postings = MakePostings(1000, 12);
  PostingFormat format = WriterFormat(postings);
  ListFixture fixture;
  fixture.Write(postings, format);
  for (size_t i = 0; i < postings.size(); i += 37) {
    auto posting = ReadPostingAt(fixture.pool.get(), fixture.extent,
                                 fixture.locations[i], format);
    ASSERT_TRUE(posting.ok()) << posting.status();
    EXPECT_EQ(posting->id, postings[i].id) << i;
    EXPECT_EQ(posting->positions, postings[i].positions) << i;
    EXPECT_EQ(posting->elem_rank, format.DecodedRank(postings[i].elem_rank))
        << i;
  }
  EXPECT_FALSE(ReadPostingAt(fixture.pool.get(), fixture.extent,
                             PostingLocation{fixture.extent.page_count, 0},
                             format)
                   .ok());
}

TEST_P(CodecRoundTripTest, SeekToPageEveryFormat) {
  auto postings = MakePostings(2000, 13);
  PostingFormat format = WriterFormat(postings);
  ListFixture fixture;
  fixture.Write(postings, format);
  ASSERT_GT(fixture.extent.page_count, 2u);
  size_t first_on_page1 = 0;
  while (fixture.locations[first_on_page1].page_index != 1) ++first_on_page1;

  PostingListCursor cursor(fixture.pool.get(), fixture.extent, format);
  ASSERT_TRUE(cursor.SeekToPage(1).ok());
  Posting posting;
  auto has = cursor.Next(&posting);
  ASSERT_TRUE(has.ok());
  ASSERT_TRUE(*has);
  EXPECT_EQ(posting.id, postings[first_on_page1].id);
  EXPECT_FALSE(cursor.SeekToPage(fixture.extent.page_count).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Formats, CodecRoundTripTest,
    ::testing::Combine(::testing::Values(kPostingCodecVarint,
                                         kPostingCodecBp128,
                                         kPostingCodecVarintGb),
                       ::testing::Values(RankEncoding::kFloat32,
                                         RankEncoding::kQuantU8,
                                         RankEncoding::kQuantU16),
                       ::testing::Bool()),
    FormatTupleName);

TEST(PostingListTest, SeekToPageStartsAtPageBoundary) {
  auto postings = MakePostings(2000, 7);
  ListFixture fixture;
  fixture.Write(postings, /*delta=*/true);
  ASSERT_GT(fixture.extent.page_count, 2u);

  // The first posting on page 1 is the first whose location page is 1.
  size_t first_on_page1 = 0;
  while (fixture.locations[first_on_page1].page_index != 1) ++first_on_page1;

  PostingListCursor cursor(fixture.pool.get(), fixture.extent, true);
  ASSERT_TRUE(cursor.SeekToPage(1).ok());
  Posting posting;
  auto has = cursor.Next(&posting);
  ASSERT_TRUE(has.ok());
  ASSERT_TRUE(*has);
  EXPECT_EQ(posting, postings[first_on_page1]);
  EXPECT_FALSE(cursor.SeekToPage(fixture.extent.page_count).ok());
}

TEST(PostingListTest, DeltaEncodingSavesSpace) {
  // Deep sibling IDs (the XMark regime) share long prefixes, which is where
  // prefix-delta coding pays off.
  std::vector<Posting> postings;
  for (uint32_t leaf = 0; leaf < 20000; ++leaf) {
    Posting posting;
    posting.id = DeweyId({0, 1, 2, 3, 4, 5, 6, leaf / 8, leaf % 8});
    posting.elem_rank = 0.25f;
    posting.positions = {leaf};
    postings.push_back(std::move(posting));
  }
  ListFixture delta_fixture, raw_fixture;
  delta_fixture.Write(postings, true);
  raw_fixture.Write(postings, false);
  EXPECT_LT(delta_fixture.extent.page_count,
            raw_fixture.extent.page_count * 3 / 4);
}

TEST(PostingListTest, PositionCapTruncates) {
  Posting huge;
  huge.id = DeweyId({1});
  huge.elem_rank = 0.5f;
  for (uint32_t p = 0; p < 2 * kMaxPositionsPerPosting; ++p) {
    huge.positions.push_back(p * 3);
  }
  ListFixture fixture;
  PostingListWriter writer(fixture.file.get(), true);
  ASSERT_TRUE(writer.Add(huge).ok());
  auto extent = writer.Finish();
  ASSERT_TRUE(extent.ok());
  fixture.pool =
      std::make_unique<storage::BufferPool>(fixture.file.get(), 16, nullptr);
  PostingListCursor cursor(fixture.pool.get(), *extent, true);
  Posting read;
  auto has = cursor.Next(&read);
  ASSERT_TRUE(has.ok());
  ASSERT_TRUE(*has);
  EXPECT_EQ(read.positions.size(), kMaxPositionsPerPosting);
  EXPECT_EQ(read.positions.front(), huge.positions.front());
}

TEST(PostingListTest, EmptyList) {
  ListFixture fixture;
  fixture.Write({}, true);
  EXPECT_EQ(fixture.extent.entry_count, 0u);
  EXPECT_EQ(fixture.extent.page_count, 0u);
  PostingListCursor cursor(fixture.pool.get(), fixture.extent, true);
  Posting posting;
  auto has = cursor.Next(&posting);
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has);
}

TEST(AnalyzerTest, TokenizesAndLowercases) {
  Analyzer analyzer;
  uint32_t position = 0;
  auto tokens = analyzer.Tokenize("The XQL Query-Language, 2003!", &position);
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].term, "the");
  EXPECT_EQ(tokens[1].term, "xql");
  EXPECT_EQ(tokens[2].term, "query");
  EXPECT_EQ(tokens[3].term, "language");
  EXPECT_EQ(tokens[4].term, "2003");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[4].position, 4u);
  EXPECT_EQ(position, 5u);
}

TEST(AnalyzerTest, PositionsContinueAcrossCalls) {
  Analyzer analyzer;
  uint32_t position = 0;
  analyzer.Tokenize("one two", &position);
  auto tokens = analyzer.Tokenize("three", &position);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].position, 2u);
}

TEST(AnalyzerTest, StopwordsConsumePositions) {
  AnalyzerOptions options;
  options.stopwords = {"the", "of"};
  Analyzer analyzer(options);
  uint32_t position = 0;
  auto tokens = analyzer.Tokenize("anatomy of the engine", &position);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].term, "anatomy");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].term, "engine");
  EXPECT_EQ(tokens[1].position, 3u);  // distance preserved
}

TEST(AnalyzerTest, NormalizeKeyword) {
  Analyzer analyzer;
  EXPECT_EQ(analyzer.NormalizeKeyword("XQL"), "xql");
  EXPECT_EQ(analyzer.NormalizeKeyword("  Gray "), "gray");
  EXPECT_EQ(analyzer.NormalizeKeyword("two words"), "");
  EXPECT_EQ(analyzer.NormalizeKeyword("!!"), "");
}

TEST(LexiconTest, SerializeRoundTrip) {
  Lexicon lexicon;
  TermInfo info1;
  info1.list = ListExtent{5, 3, 120};
  info1.btree_root = storage::MakeNodeRef(9, 128);
  info1.skips.push_back(SkipEntry{0, dewey::DeweyId({1, 2}), 0.75f});
  info1.skips.push_back(SkipEntry{1, dewey::DeweyId({4}), 123.5f});
  TermInfo info2;
  info2.list = ListExtent{8, 1, 4};
  info2.rank_list = ListExtent{9, 1, 2};
  info2.hash_first_page = 11;
  info2.hash_page_count = 2;
  info2.hash_slot_count = 512;
  lexicon.Add("xql", info1);
  lexicon.Add("language", info2);

  std::string blob;
  lexicon.Serialize(&blob);
  auto restored = Lexicon::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->term_count(), 2u);
  const TermInfo* xql = restored->Find("xql");
  ASSERT_NE(xql, nullptr);
  EXPECT_EQ(xql->list.first_page, 5u);
  EXPECT_EQ(xql->list.entry_count, 120u);
  EXPECT_EQ(xql->btree_root, storage::MakeNodeRef(9, 128));
  // Skip descriptors round-trip including the block-max rank field.
  EXPECT_EQ(xql->skips, info1.skips);
  const TermInfo* language = restored->Find("language");
  ASSERT_NE(language, nullptr);
  EXPECT_EQ(language->hash_slot_count, 512u);
  EXPECT_EQ(restored->Find("missing"), nullptr);
}

TEST(LexiconTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Lexicon::Deserialize("\xFF\xFF\xFF").ok());
}

TEST(LexiconTest, MaxDocRankRoundTripsAtCurrentVersion) {
  Lexicon lexicon;
  TermInfo info;
  info.list = ListExtent{2, 1, 8};
  info.max_doc_rank = 3.25f;
  lexicon.Add("term", info);
  std::string blob;
  lexicon.Serialize(&blob);
  auto restored = Lexicon::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->Find("term")->max_doc_rank, 3.25f);
}

TEST(LexiconTest, VersionZeroBlobParsesWithoutMaxDocRank) {
  // A format-version-0 blob — what every index file written before the
  // max_doc_rank field carries — must deserialize byte-exact when the
  // header says version 0, with the absent field defaulting to 0 (query
  // code then treats the bound as unknown and prunes nothing).
  Lexicon lexicon;
  TermInfo info;
  info.list = ListExtent{5, 3, 120};
  info.btree_root = storage::MakeNodeRef(9, 128);
  info.max_doc_rank = 7.5f;  // must NOT be serialized at version 0
  info.skips.push_back(SkipEntry{0, dewey::DeweyId({1, 2}), 0.75f});
  info.skips.push_back(SkipEntry{1, dewey::DeweyId({4}), 123.5f});
  lexicon.Add("xql", info);

  std::string legacy_blob;
  lexicon.Serialize(&legacy_blob, /*format_version=*/0);
  std::string current_blob;
  lexicon.Serialize(&current_blob);
  // The legacy layout is strictly smaller: no 4-byte bound per term.
  EXPECT_EQ(legacy_blob.size() + sizeof(uint32_t), current_blob.size());

  auto restored =
      Lexicon::Deserialize(legacy_blob, PostingFormatSpec{},
                           /*format_version=*/0);
  ASSERT_TRUE(restored.ok()) << restored.status();
  const TermInfo* xql = restored->Find("xql");
  ASSERT_NE(xql, nullptr);
  EXPECT_EQ(xql->max_doc_rank, 0.0f);  // absent field -> no-prune default
  EXPECT_EQ(xql->list.first_page, 5u);
  EXPECT_EQ(xql->list.entry_count, 120u);
  EXPECT_EQ(xql->btree_root, storage::MakeNodeRef(9, 128));
  EXPECT_EQ(xql->skips, info.skips);  // skip descriptors stay aligned
}

}  // namespace
}  // namespace xrank::index
