// Tests for the DIL query processor (paper Figure 5) against indexed
// corpora: result correctness, top-m behaviour, and I/O patterns.

#include "query/dil_query.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace xrank::query {
namespace {

using index::IndexKind;
using testutil::BuildIndexedCorpus;
using testutil::IndexedCorpus;

TEST(DilQueryTest, Figure1SubsectionQuery) {
  auto corpus = BuildIndexedCorpus({{testutil::Figure1Xml(), "figure1.xml"}});
  DilQueryProcessor processor(corpus->pool(IndexKind::kDil),
                              corpus->lexicon(IndexKind::kDil),
                              ScoringOptions{});
  auto response = processor.Execute({"xql", "language"}, 10);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_FALSE(response->results.empty());
  // The most specific result (subsection) and the paper (independent
  // occurrences) — exactly two results.
  EXPECT_EQ(response->results.size(), 2u);
  // Verify the deepest result corresponds to the subsection by resolving
  // its tag through the graph.
  for (const RankedResult& result : response->results) {
    auto node = corpus->graph.FindByDewey(result.id);
    ASSERT_TRUE(node.ok());
    std::string_view tag = corpus->graph.name(*node);
    EXPECT_TRUE(tag == "subsection" || tag == "paper") << tag;
  }
}

TEST(DilQueryTest, TopMTruncates) {
  auto corpus = BuildIndexedCorpus({{testutil::Figure1Xml(), "figure1.xml"}});
  DilQueryProcessor processor(corpus->pool(IndexKind::kDil),
                              corpus->lexicon(IndexKind::kDil),
                              ScoringOptions{});
  auto all = processor.Execute({"xql"}, 100);
  ASSERT_TRUE(all.ok());
  ASSERT_GT(all->results.size(), 1u);
  auto top1 = processor.Execute({"xql"}, 1);
  ASSERT_TRUE(top1.ok());
  ASSERT_EQ(top1->results.size(), 1u);
  EXPECT_EQ(top1->results[0].id, all->results[0].id);
}

TEST(DilQueryTest, ResultsSortedByRank) {
  auto corpus = BuildIndexedCorpus({{testutil::Figure1Xml(), "figure1.xml"}});
  DilQueryProcessor processor(corpus->pool(IndexKind::kDil),
                              corpus->lexicon(IndexKind::kDil),
                              ScoringOptions{});
  auto response = processor.Execute({"xml"}, 50);
  ASSERT_TRUE(response.ok());
  for (size_t i = 1; i < response->results.size(); ++i) {
    EXPECT_GE(response->results[i - 1].rank, response->results[i].rank);
  }
}

TEST(DilQueryTest, MissingKeywordEmpty) {
  auto corpus = BuildIndexedCorpus({{testutil::Figure1Xml(), "figure1.xml"}});
  DilQueryProcessor processor(corpus->pool(IndexKind::kDil),
                              corpus->lexicon(IndexKind::kDil),
                              ScoringOptions{});
  auto response = processor.Execute({"xql", "kumquat"}, 10);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->results.empty());
  EXPECT_EQ(response->stats.postings_scanned, 0u);
}

TEST(DilQueryTest, EmptyKeywordListRejected) {
  auto corpus = BuildIndexedCorpus({{testutil::Figure1Xml(), "figure1.xml"}});
  DilQueryProcessor processor(corpus->pool(IndexKind::kDil),
                              corpus->lexicon(IndexKind::kDil),
                              ScoringOptions{});
  EXPECT_FALSE(processor.Execute({}, 10).ok());
}

TEST(DilQueryTest, ScansEntireListsSequentially) {
  // DIL always scans each keyword list fully, and (through the stream-aware
  // cost model) almost entirely sequentially.
  std::vector<std::pair<std::string, std::string>> docs;
  for (int i = 0; i < 1500; ++i) {
    std::string text = "<doc><a>alpha beta gamma</a><b>alpha delta</b></doc>";
    docs.emplace_back(text, "d" + std::to_string(i));
  }
  auto corpus = BuildIndexedCorpus(docs);
  corpus->DropCaches();
  DilQueryProcessor processor(corpus->pool(IndexKind::kDil),
                              corpus->lexicon(IndexKind::kDil),
                              ScoringOptions{});
  auto response = processor.Execute({"alpha", "delta"}, 5);
  ASSERT_TRUE(response.ok());
  // Every posting of both lists is consumed.
  const auto* alpha = corpus->lexicon(IndexKind::kDil)->Find("alpha");
  const auto* delta = corpus->lexicon(IndexKind::kDil)->Find("delta");
  ASSERT_NE(alpha, nullptr);
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(response->stats.postings_scanned,
            alpha->list.entry_count + delta->list.entry_count);
  // Sequential reads dominate.
  EXPECT_GE(response->stats.sequential_reads,
            response->stats.random_reads);
}

TEST(DilQueryTest, HonoursSumAggregation) {
  auto corpus = BuildIndexedCorpus(
      {{"<r><p><s>x y</s><s>x z</s></p></r>", "doc"}});
  ScoringOptions max_scoring;
  max_scoring.aggregation = RankAggregation::kMax;
  ScoringOptions sum_scoring;
  sum_scoring.aggregation = RankAggregation::kSum;
  DilQueryProcessor max_processor(corpus->pool(IndexKind::kDil),
                                  corpus->lexicon(IndexKind::kDil),
                                  max_scoring);
  DilQueryProcessor sum_processor(corpus->pool(IndexKind::kDil),
                                  corpus->lexicon(IndexKind::kDil),
                                  sum_scoring);
  // 'x' occurs in two sibling sections; their parent <p> is the result for
  // "x y"? No: section 1 holds x,y together (most specific). Use "x z":
  // section 2 is most specific; under sum, the *other* x raises nothing for
  // section 2 itself. Query "y z" meets only at <p>, whose keyword-0 rank
  // under sum vs max differs when multiple descendants carry 'x'. Use 'x'
  // alone at <p>: suppressed by R0 children. Simplest observable: the 'x y'
  // result ranks equal under both; 'x' multi-occurrence affects only
  // ancestors, which are suppressed — so instead verify both processors
  // agree on result sets here (rank values may differ).
  auto max_response = max_processor.Execute({"y", "z"}, 10);
  auto sum_response = sum_processor.Execute({"y", "z"}, 10);
  ASSERT_TRUE(max_response.ok() && sum_response.ok());
  ASSERT_EQ(max_response->results.size(), sum_response->results.size());
  for (size_t i = 0; i < max_response->results.size(); ++i) {
    EXPECT_EQ(max_response->results[i].id, sum_response->results[i].id);
  }
}

}  // namespace
}  // namespace xrank::query
