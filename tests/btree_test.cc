// Tests for the disk-resident B+-tree: bulk load, SeekCeil with
// predecessor, longest-common-prefix probes (the RDIL primitive of paper
// Section 4.3.2), prefix range scans, and the shared-page packing of short
// trees (Section 4.3.1).

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "storage/btree.h"

namespace xrank::storage {
namespace {

using dewey::DeweyId;

struct TreeFixture {
  std::unique_ptr<PageFile> file = PageFile::CreateInMemory();
  CostModel model;
  std::unique_ptr<BufferPool> pool;
  NodeRef root = kInvalidRef;
  BtreeBuilder::BuildStats stats;

  void Build(const std::vector<std::pair<DeweyId, uint64_t>>& entries,
             SharedPagePacker* packer = nullptr) {
    BtreeBuilder builder(file.get(), packer);
    for (const auto& [key, value] : entries) {
      ASSERT_TRUE(builder.Add(key, value).ok()) << key.ToString();
    }
    auto result = builder.Finish();
    ASSERT_TRUE(result.ok()) << result.status();
    stats = *result;
    root = stats.root;
    pool = std::make_unique<BufferPool>(file.get(), 256, &model);
  }

  BtreeReader Reader() { return BtreeReader(pool.get(), root); }
};

std::vector<std::pair<DeweyId, uint64_t>> SequentialEntries(size_t count) {
  // Dewey IDs shaped like real document trees: doc.chapter.section.para.
  std::vector<std::pair<DeweyId, uint64_t>> entries;
  uint64_t value = 0;
  for (uint32_t doc = 0; entries.size() < count; ++doc) {
    for (uint32_t a = 0; a < 8 && entries.size() < count; ++a) {
      for (uint32_t b = 0; b < 8 && entries.size() < count; ++b) {
        entries.emplace_back(DeweyId({doc, a, b}), value++);
      }
    }
  }
  return entries;
}

TEST(BtreeTest, EmptyTree) {
  TreeFixture fixture;
  fixture.Build({});
  EXPECT_EQ(fixture.root, kInvalidRef);
  auto seek = fixture.Reader().SeekCeil(DeweyId({1}));
  ASSERT_TRUE(seek.ok());
  EXPECT_FALSE(seek->has_ceil);
  EXPECT_FALSE(seek->has_pred);
  auto lcp = fixture.Reader().LongestCommonPrefixWith(DeweyId({1, 2}));
  ASSERT_TRUE(lcp.ok());
  EXPECT_EQ(*lcp, 0u);
}

TEST(BtreeTest, SingleLeafExactAndCeil) {
  TreeFixture fixture;
  fixture.Build({{DeweyId({1, 0}), 10},
                 {DeweyId({1, 2}), 12},
                 {DeweyId({2, 0, 1}), 20}});
  EXPECT_EQ(fixture.stats.height, 1u);
  auto reader = fixture.Reader();

  auto exact = reader.SeekCeil(DeweyId({1, 2}));
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(exact->has_ceil);
  EXPECT_EQ(exact->ceil.key, DeweyId({1, 2}));
  EXPECT_EQ(exact->ceil.value, 12u);
  ASSERT_TRUE(exact->has_pred);
  EXPECT_EQ(exact->pred.key, DeweyId({1, 0}));

  auto between = reader.SeekCeil(DeweyId({1, 1}));
  ASSERT_TRUE(between.ok());
  EXPECT_EQ(between->ceil.key, DeweyId({1, 2}));
  EXPECT_EQ(between->pred.key, DeweyId({1, 0}));

  auto before_all = reader.SeekCeil(DeweyId({0}));
  ASSERT_TRUE(before_all.ok());
  ASSERT_TRUE(before_all->has_ceil);
  EXPECT_EQ(before_all->ceil.key, DeweyId({1, 0}));
  EXPECT_FALSE(before_all->has_pred);

  auto after_all = reader.SeekCeil(DeweyId({9}));
  ASSERT_TRUE(after_all.ok());
  EXPECT_FALSE(after_all->has_ceil);
  ASSERT_TRUE(after_all->has_pred);
  EXPECT_EQ(after_all->pred.key, DeweyId({2, 0, 1}));
}

TEST(BtreeTest, MultiPageSeekAcrossLeaves) {
  TreeFixture fixture;
  auto entries = SequentialEntries(5000);
  fixture.Build(entries);
  EXPECT_GT(fixture.stats.height, 1u);
  EXPECT_GT(fixture.stats.full_pages, 2u);
  auto reader = fixture.Reader();

  // Every 97th entry: exact seek finds it, and pred is the previous entry.
  for (size_t i = 0; i < entries.size(); i += 97) {
    auto seek = reader.SeekCeil(entries[i].first);
    ASSERT_TRUE(seek.ok());
    ASSERT_TRUE(seek->has_ceil) << i;
    EXPECT_EQ(seek->ceil.key, entries[i].first);
    EXPECT_EQ(seek->ceil.value, entries[i].second);
    if (i > 0) {
      ASSERT_TRUE(seek->has_pred) << i;
      EXPECT_EQ(seek->pred.key, entries[i - 1].first) << i;
    } else {
      EXPECT_FALSE(seek->has_pred);
    }
  }
}

TEST(BtreeTest, ScanAllReturnsEverythingInOrder) {
  TreeFixture fixture;
  auto entries = SequentialEntries(3000);
  fixture.Build(entries);
  std::vector<BtreeEntry> scanned;
  ASSERT_TRUE(fixture.Reader()
                  .ScanAll([&](const BtreeEntry& entry) {
                    scanned.push_back(entry);
                    return true;
                  })
                  .ok());
  ASSERT_EQ(scanned.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(scanned[i].key, entries[i].first);
    EXPECT_EQ(scanned[i].value, entries[i].second);
  }
}

TEST(BtreeTest, ScanPrefixSelectsSubtree) {
  TreeFixture fixture;
  auto entries = SequentialEntries(2000);
  fixture.Build(entries);
  DeweyId prefix({3, 2});
  size_t expected = 0;
  for (const auto& [key, value] : entries) {
    if (prefix.IsPrefixOf(key)) ++expected;
  }
  ASSERT_GT(expected, 0u);
  size_t found = 0;
  ASSERT_TRUE(fixture.Reader()
                  .ScanPrefix(prefix,
                              [&](const BtreeEntry& entry) {
                                EXPECT_TRUE(prefix.IsPrefixOf(entry.key));
                                ++found;
                                return true;
                              })
                  .ok());
  EXPECT_EQ(found, expected);
}

TEST(BtreeTest, ScanPrefixEarlyStop) {
  TreeFixture fixture;
  fixture.Build(SequentialEntries(500));
  size_t seen = 0;
  ASSERT_TRUE(fixture.Reader()
                  .ScanPrefix(DeweyId({0}),
                              [&](const BtreeEntry&) {
                                ++seen;
                                return seen < 5;
                              })
                  .ok());
  EXPECT_EQ(seen, 5u);
}

TEST(BtreeTest, LongestCommonPrefixProbe) {
  TreeFixture fixture;
  // Mirrors the paper's B+-tree example (Section 4.3.2): leaves
  // ..., 8.2.1.4.2, 9.0.4.1.2, 9.0.5.6, 10.8.3.
  fixture.Build({{DeweyId({8, 2, 1, 4, 2}), 1},
                 {DeweyId({9, 0, 4, 1, 2}), 2},
                 {DeweyId({9, 0, 5, 6}), 3},
                 {DeweyId({10, 8, 3}), 4}});
  auto reader = fixture.Reader();
  // Probe 9.0.4.2.0: ceil is 9.0.5.6 (CPL 2), pred is 9.0.4.1.2 (CPL 3);
  // the longest common prefix is 9.0.4.
  auto lcp = reader.LongestCommonPrefixWith(DeweyId({9, 0, 4, 2, 0}));
  ASSERT_TRUE(lcp.ok());
  EXPECT_EQ(*lcp, 3u);
  // Probe below everything.
  auto low = reader.LongestCommonPrefixWith(DeweyId({1, 1}));
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(*low, 0u);
  // Exact member: full depth.
  auto exact = reader.LongestCommonPrefixWith(DeweyId({10, 8, 3}));
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(*exact, 3u);
}

TEST(BtreeTest, RejectsNonIncreasingKeys) {
  auto file = PageFile::CreateInMemory();
  BtreeBuilder builder(file.get(), nullptr);
  ASSERT_TRUE(builder.Add(DeweyId({1, 2}), 1).ok());
  EXPECT_FALSE(builder.Add(DeweyId({1, 2}), 2).ok());  // duplicate
  EXPECT_FALSE(builder.Add(DeweyId({1, 1}), 3).ok());  // decreasing
}

TEST(SharedPagePackerTest, PacksManySmallTreesOntoFewPages) {
  auto file = PageFile::CreateInMemory();
  SharedPagePacker packer(file.get());
  std::vector<NodeRef> roots;
  // 100 tiny trees (3 entries each) would waste 100 pages unpacked.
  for (uint32_t t = 0; t < 100; ++t) {
    BtreeBuilder builder(file.get(), &packer);
    for (uint32_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(builder.Add(DeweyId({t, i}), t * 10 + i).ok());
    }
    auto stats = builder.Finish();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->full_pages, 0u);
    EXPECT_GT(stats->packed_bytes, 0u);
    roots.push_back(stats->root);
  }
  EXPECT_LT(file->page_count(), 10u);  // far fewer than 100

  // Every packed tree is still independently readable.
  CostModel model;
  BufferPool pool(file.get(), 64, &model);
  for (uint32_t t = 0; t < 100; ++t) {
    BtreeReader reader(&pool, roots[t]);
    auto seek = reader.SeekCeil(DeweyId({t, 1}));
    ASSERT_TRUE(seek.ok());
    ASSERT_TRUE(seek->has_ceil);
    EXPECT_EQ(seek->ceil.value, t * 10 + 1);
  }
}

// Property test: against random key sets, SeekCeil must agree with an
// in-memory std::map reference.
class BtreeRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BtreeRandomTest, SeekMatchesReferenceMap) {
  xrank::Random rng(GetParam());
  std::map<DeweyId, uint64_t> reference;
  while (reference.size() < 800) {
    size_t depth = 1 + rng.Uniform(6);
    std::vector<uint32_t> components;
    for (size_t i = 0; i < depth; ++i) {
      components.push_back(static_cast<uint32_t>(rng.Uniform(9)));
    }
    DeweyId key(std::move(components));
    reference.emplace(key, reference.size());
  }
  TreeFixture fixture;
  std::vector<std::pair<DeweyId, uint64_t>> entries(reference.begin(),
                                                    reference.end());
  fixture.Build(entries);
  auto reader = fixture.Reader();

  for (int probe = 0; probe < 300; ++probe) {
    size_t depth = 1 + rng.Uniform(6);
    std::vector<uint32_t> components;
    for (size_t i = 0; i < depth; ++i) {
      components.push_back(static_cast<uint32_t>(rng.Uniform(9)));
    }
    DeweyId key(std::move(components));

    auto seek = reader.SeekCeil(key);
    ASSERT_TRUE(seek.ok());
    auto it = reference.lower_bound(key);
    if (it == reference.end()) {
      EXPECT_FALSE(seek->has_ceil);
    } else {
      ASSERT_TRUE(seek->has_ceil);
      EXPECT_EQ(seek->ceil.key, it->first);
      EXPECT_EQ(seek->ceil.value, it->second);
    }
    if (it == reference.begin()) {
      EXPECT_FALSE(seek->has_pred);
    } else {
      auto pred = std::prev(it);
      ASSERT_TRUE(seek->has_pred);
      EXPECT_EQ(seek->pred.key, pred->first);
      EXPECT_EQ(seek->pred.value, pred->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BtreeRandomTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace xrank::storage
