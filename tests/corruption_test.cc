// Failure-injection tests: every on-disk decoder must reject corrupted
// input with a Status — never crash, hang, or read out of bounds. Random
// truncations and byte flips are applied to each serialized format.

#include <gtest/gtest.h>

#include <cstring>

#include "common/random.h"
#include "common/varint.h"
#include "dewey/codec.h"
#include "index/index_builder.h"
#include "index/lexicon.h"
#include "query/dil_query.h"
#include "test_util.h"

namespace xrank {
namespace {

// Runs `decode` against truncations and single-byte flips of `blob`. The
// decoder may succeed (some corruptions are undetectable) but must never
// crash; detected corruption must come back as a Status.
template <typename DecodeFn>
void Torture(const std::string& blob, uint64_t seed, DecodeFn decode) {
  // All truncations.
  for (size_t len = 0; len < blob.size(); ++len) {
    decode(blob.substr(0, len));
  }
  // Random byte flips.
  Random rng(seed);
  for (int trial = 0; trial < 200; ++trial) {
    std::string copy = blob;
    size_t victim = rng.Uniform(copy.size());
    copy[victim] = static_cast<char>(rng.Next64());
    decode(copy);
  }
}

TEST(CorruptionTest, VarintDecoderNeverCrashes) {
  std::string blob;
  for (uint64_t v : {0ULL, 127ULL, 300ULL, 1ULL << 40}) {
    PutVarint64(&blob, v);
  }
  Torture(blob, 1, [](const std::string& data) {
    size_t offset = 0;
    while (offset < data.size()) {
      auto v = GetVarint64(data, &offset);
      if (!v.ok()) break;
    }
  });
}

TEST(CorruptionTest, DeweyDecoderNeverCrashes) {
  std::string blob;
  dewey::EncodeDeweyId(dewey::DeweyId({5, 0, 3, 0, 1}), &blob);
  dewey::EncodeDeweyId(dewey::DeweyId({1000000, 2}), &blob);
  Torture(blob, 2, [](const std::string& data) {
    size_t offset = 0;
    while (offset < data.size()) {
      auto id = dewey::DecodeDeweyId(data, &offset);
      if (!id.ok()) break;
    }
  });
}

TEST(CorruptionTest, DeweyDeltaDecoderNeverCrashes) {
  dewey::DeweyId previous({5, 0, 3});
  std::string blob;
  dewey::EncodeDeweyIdDelta(previous, dewey::DeweyId({5, 0, 4, 1}), &blob);
  Torture(blob, 3, [&](const std::string& data) {
    size_t offset = 0;
    auto id = dewey::DecodeDeweyIdDelta(previous, data, &offset);
    (void)id;
  });
}

TEST(CorruptionTest, LexiconDecoderNeverCrashes) {
  index::Lexicon lexicon;
  index::TermInfo info;
  info.list = index::ListExtent{3, 2, 40, 512};
  info.btree_root = storage::MakeNodeRef(9, 64);
  lexicon.Add("alpha", info);
  lexicon.Add("beta", info);
  std::string blob;
  lexicon.Serialize(&blob);
  Torture(blob, 4, [](const std::string& data) {
    auto lex = index::Lexicon::Deserialize(data);
    (void)lex;
  });
}

TEST(CorruptionTest, TermInfoWithSkipsAndHashFieldsNeverCrashes) {
  // A lexicon entry exercising every optional TermInfo field: rank list,
  // B+-tree root, hash-index descriptor, and skip-block descriptors. The
  // varint decoder must survive arbitrary damage to any of them.
  index::Lexicon lexicon;
  index::TermInfo info;
  info.list = index::ListExtent{3, 4, 123, 8192};
  info.rank_list = index::ListExtent{7, 1, 12, 200};
  info.btree_root = storage::MakeNodeRef(9, 64);
  info.hash_first_page = 11;
  info.hash_page_count = 2;
  info.hash_slot_count = 97;
  info.hash_offset = 128;
  info.skips.push_back(index::SkipEntry{3, dewey::DeweyId({0, 1, 2}), 0.5f});
  info.skips.push_back(index::SkipEntry{4, dewey::DeweyId({5, 0}), 1e30f});
  info.skips.push_back(
      index::SkipEntry{5, dewey::DeweyId({9, 3, 1, 4}), -3.0f});
  info.skips.push_back(
      index::SkipEntry{6, dewey::DeweyId({1000000, 2, 2, 2, 2, 2}), 0.0f});
  lexicon.Add("gamma", info);
  lexicon.Add("delta", info);
  std::string blob;
  lexicon.Serialize(&blob);
  Torture(blob, 6, [](const std::string& data) {
    auto lex = index::Lexicon::Deserialize(data);
    if (!lex.ok()) return;
    // A successfully decoded (possibly silently corrupted) lexicon must at
    // least be safely traversable.
    for (const auto& [term, decoded] : lex->terms()) {
      for (const index::SkipEntry& skip : decoded.skips) {
        (void)skip.first_id.depth();
      }
    }
  });
}

TEST(CorruptionTest, BuiltIndexLexiconBlobNeverCrashes) {
  // The real thing: serialize the lexicon of an actually built HDIL index
  // (which carries skip descriptors and rank-list extents) and torture the
  // decoder with it. Catches field-interaction bugs a synthetic TermInfo
  // cannot.
  auto corpus =
      testutil::BuildIndexedCorpus({{testutil::Figure1Xml(), "f"}});
  const index::BuiltIndex& built =
      corpus->indexes.at(index::IndexKind::kHdil).built;
  bool has_skips = false;
  for (const auto& [term, info] : built.lexicon.terms()) {
    has_skips = has_skips || !info.skips.empty();
  }
  ASSERT_TRUE(has_skips) << "HDIL build should have produced skip entries";
  std::string blob;
  built.lexicon.Serialize(&blob);
  Torture(blob, 7, [](const std::string& data) {
    auto lex = index::Lexicon::Deserialize(data);
    (void)lex;
  });
}

TEST(CorruptionTest, CorruptSkipDescriptorsDoNotCrashSkipMerge) {
  // Skip descriptors steer the document-at-a-time merge. Scramble them
  // (wrong pages, wrong IDs, out-of-range pages) and run skipping queries:
  // the cursor must degrade to Status or a scan, never crash or hang.
  auto corpus =
      testutil::BuildIndexedCorpus({{testutil::Figure1Xml(), "f"}});
  index::BuiltIndex& built = corpus->indexes.at(index::IndexKind::kDil).built;

  Random rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    index::Lexicon scrambled;
    for (const auto& [term, original] : built.lexicon.terms()) {
      index::TermInfo info = original;
      for (index::SkipEntry& skip : info.skips) {
        switch (rng.Uniform(6)) {
          case 0:
            skip.page_index = static_cast<uint32_t>(rng.Next64());
            break;
          case 1:
            skip.first_id = dewey::DeweyId(
                {static_cast<uint32_t>(rng.Uniform(10)),
                 static_cast<uint32_t>(rng.Uniform(10))});
            break;
          case 2:
            skip.first_id = dewey::DeweyId({});
            break;
          case 3: {
            // Scramble the block-max rank, including non-finite and
            // negative damage: the pruning bound must treat these as
            // unusable (no skip), never as license to drop results.
            uint32_t bits = static_cast<uint32_t>(rng.Next64());
            float damaged;
            std::memcpy(&damaged, &bits, sizeof(damaged));
            skip.max_rank = damaged;
            break;
          }
          case 4:
            skip.max_rank = -skip.max_rank - 1.0f;
            break;
          default:
            break;  // leave intact
        }
      }
      scrambled.Add(term, std::move(info));
    }
    storage::BufferPool pool(built.file.get(), 64, nullptr);
    query::DilQueryProcessor processor(&pool, &scrambled,
                                       query::ScoringOptions{},
                                       /*use_skip_blocks=*/true);
    auto response = processor.Execute({"xql", "language"}, 5);
    (void)response;  // ok() either way; just must not crash or hang
  }
}

TEST(CorruptionTest, IndexOpenRejectsCorruptedPages) {
  // Build a real DIL index, then flip bytes in its pages and reopen/query.
  auto corpus =
      testutil::BuildIndexedCorpus({{testutil::Figure1Xml(), "f"}});
  const index::BuiltIndex& built =
      corpus->indexes.at(index::IndexKind::kDil).built;

  Random rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    // Copy the whole file into a fresh memory file with one corrupted page.
    auto copy = storage::PageFile::CreateInMemory();
    uint32_t pages = built.file->page_count();
    uint32_t victim_page = static_cast<uint32_t>(rng.Uniform(pages));
    for (uint32_t p = 0; p < pages; ++p) {
      storage::Page page;
      ASSERT_TRUE(built.file->Read(p, &page).ok());
      if (p == victim_page) {
        size_t offset = rng.Uniform(storage::kPageSize);
        page.data[offset] = static_cast<char>(rng.Next64());
      }
      ASSERT_TRUE(copy->Allocate().ok());
      ASSERT_TRUE(copy->Write(p, page).ok());
    }
    // Opening may fail (corrupted header/lexicon) or succeed; neither may
    // crash, and queries on a successfully opened index must return either
    // results or a Status.
    auto reopened = index::OpenIndex(std::move(copy));
    if (!reopened.ok()) continue;
    storage::BufferPool pool(reopened->file.get(), 64, nullptr);
    query::DilQueryProcessor processor(&pool, &reopened->lexicon,
                                       query::ScoringOptions{});
    auto response = processor.Execute({"xql", "language"}, 5);
    (void)response;  // ok() either way; just must not crash
  }
}

}  // namespace
}  // namespace xrank
