// Tests for the RDIL query processor (paper Figure 7): top-m equivalence
// with DIL, threshold early termination on correlated data, and probe
// accounting.

#include "query/rdil_query.h"

#include <gtest/gtest.h>

#include "datagen/dblp_gen.h"
#include "query/dil_query.h"
#include "test_util.h"
#include "xml/serializer.h"

namespace xrank::query {
namespace {

using index::IndexKind;
using testutil::BuildIndexedCorpus;

std::vector<std::pair<std::string, std::string>> SerializeCorpus(
    const datagen::Corpus& corpus) {
  std::vector<std::pair<std::string, std::string>> docs;
  for (const xml::Document& doc : corpus.documents) {
    docs.emplace_back(xml::Serialize(doc), doc.uri);
  }
  return docs;
}

TEST(RdilQueryTest, MatchesDilOnFigure1) {
  auto corpus = BuildIndexedCorpus({{testutil::Figure1Xml(), "figure1.xml"}});
  DilQueryProcessor dil(corpus->pool(IndexKind::kDil),
                        corpus->lexicon(IndexKind::kDil), ScoringOptions{});
  RdilQueryProcessor rdil(corpus->pool(IndexKind::kRdil),
                          corpus->lexicon(IndexKind::kRdil),
                          ScoringOptions{});
  for (auto keywords : std::vector<std::vector<std::string>>{
           {"xql"},
           {"xql", "language"},
           {"xql", "ricardo"},
           {"querying", "xyleme"},
           {"xml", "sigir", "workshop"}}) {
    auto dil_response = dil.Execute(keywords, 10);
    auto rdil_response = rdil.Execute(keywords, 10);
    ASSERT_TRUE(dil_response.ok() && rdil_response.ok());
    ASSERT_EQ(dil_response->results.size(), rdil_response->results.size());
    for (size_t i = 0; i < dil_response->results.size(); ++i) {
      EXPECT_EQ(dil_response->results[i].id, rdil_response->results[i].id);
      EXPECT_NEAR(dil_response->results[i].rank,
                  rdil_response->results[i].rank, 1e-9);
    }
  }
}

TEST(RdilQueryTest, ThresholdTerminatesEarlyOnCorrelatedKeywords) {
  datagen::DblpOptions gen;
  gen.num_papers = 400;
  gen.high_corr_frequency = 0.25;  // plenty of co-occurrences
  datagen::Corpus corpus_data = datagen::GenerateDblp(gen);
  auto corpus = BuildIndexedCorpus(SerializeCorpus(corpus_data));
  corpus->DropCaches();

  const auto& quad = corpus_data.planted.high_correlation[0];
  RdilQueryProcessor rdil(corpus->pool(IndexKind::kRdil),
                          corpus->lexicon(IndexKind::kRdil),
                          ScoringOptions{});
  auto response = rdil.Execute({quad[0], quad[1]}, 3);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_GE(response->results.size(), 3u);
  EXPECT_TRUE(response->stats.threshold_terminated);
  // Early termination: far fewer rank-list entries consumed than exist.
  const auto* info = corpus->lexicon(IndexKind::kRdil)->Find(quad[0]);
  ASSERT_NE(info, nullptr);
  EXPECT_LT(response->stats.rounds, 2 * info->list.entry_count);
  EXPECT_GT(response->stats.btree_probes, 0u);
}

TEST(RdilQueryTest, TopMAgreesWithDilOnSyntheticCorpus) {
  datagen::DblpOptions gen;
  gen.num_papers = 150;
  gen.seed = 11;
  datagen::Corpus corpus_data = datagen::GenerateDblp(gen);
  auto corpus = BuildIndexedCorpus(SerializeCorpus(corpus_data));

  DilQueryProcessor dil(corpus->pool(IndexKind::kDil),
                        corpus->lexicon(IndexKind::kDil), ScoringOptions{});
  RdilQueryProcessor rdil(corpus->pool(IndexKind::kRdil),
                          corpus->lexicon(IndexKind::kRdil),
                          ScoringOptions{});
  // Mix of planted and organic Zipf terms.
  const auto& quad = corpus_data.planted.high_correlation[1];
  const auto& low = corpus_data.planted.low_correlation[0];
  std::vector<std::vector<std::string>> queries = {
      {quad[0], quad[1]},
      {quad[0], quad[1], quad[2], quad[3]},
      {low[0], low[1]},
      {"sel0", "sel1"},
  };
  for (const auto& keywords : queries) {
    for (size_t m : {1u, 5u, 20u}) {
      auto dil_response = dil.Execute(keywords, m);
      auto rdil_response = rdil.Execute(keywords, m);
      ASSERT_TRUE(dil_response.ok() && rdil_response.ok());
      ASSERT_EQ(dil_response->results.size(), rdil_response->results.size())
          << keywords[0] << " m=" << m;
      for (size_t i = 0; i < dil_response->results.size(); ++i) {
        EXPECT_EQ(dil_response->results[i].id, rdil_response->results[i].id)
            << keywords[0] << " m=" << m << " i=" << i;
        EXPECT_NEAR(dil_response->results[i].rank,
                    rdil_response->results[i].rank, 1e-9);
      }
    }
  }
}

TEST(RdilQueryTest, UncorrelatedKeywordsStillCorrect) {
  // Keywords that never co-occur: every probe fails, result set is empty,
  // and the scan runs to exhaustion without terminating early.
  auto corpus = BuildIndexedCorpus({
      {"<a><b>solo1 filler</b></a>", "d1"},
      {"<a><b>solo2 filler</b></a>", "d2"},
      {"<a><b>solo1 other</b></a>", "d3"},
      {"<a><b>solo2 other</b></a>", "d4"},
  });
  RdilQueryProcessor rdil(corpus->pool(IndexKind::kRdil),
                          corpus->lexicon(IndexKind::kRdil),
                          ScoringOptions{});
  auto response = rdil.Execute({"solo1", "solo2"}, 5);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->results.empty());
  EXPECT_FALSE(response->stats.threshold_terminated);
}

TEST(RdilQueryTest, SingleKeywordStopsAfterTopM) {
  datagen::DblpOptions gen;
  gen.num_papers = 300;
  datagen::Corpus corpus_data = datagen::GenerateDblp(gen);
  auto corpus = BuildIndexedCorpus(SerializeCorpus(corpus_data));
  RdilQueryProcessor rdil(corpus->pool(IndexKind::kRdil),
                          corpus->lexicon(IndexKind::kRdil),
                          ScoringOptions{});
  // 'sel0' occurs in every paper; top-5 needs only a prefix of the list.
  auto response = rdil.Execute({"sel0"}, 5);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->results.size(), 5u);
  const auto* info = corpus->lexicon(IndexKind::kRdil)->Find("sel0");
  ASSERT_NE(info, nullptr);
  EXPECT_LT(response->stats.rounds, info->list.entry_count);
  EXPECT_TRUE(response->stats.threshold_terminated);
}

}  // namespace
}  // namespace xrank::query
