// Block-max pruning property tests: the pruned conjunctive top-k merge must
// be invisible in the results — identical ids AND identical (bitwise) ranks
// versus the exhaustive-merge oracle — across randomized corpora, k values
// and term counts; and on a rank-skewed corpus it must actually prune. Also
// covers the decoded-block cache: cached re-execution returns identical
// results and reports hits.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "datagen/vocabulary.h"
#include "index/block_cache.h"
#include "index/codec.h"
#include "index/lexicon.h"
#include "index/posting.h"
#include "query/dil_query.h"
#include "query/hdil_query.h"
#include "query/result_heap.h"
#include "query/scoring.h"
#include "storage/buffer_pool.h"
#include "storage/cost_model.h"
#include "storage/page_file.h"
#include "test_util.h"
#include "xml/serializer.h"

namespace xrank {
namespace {

using index::IndexKind;
using query::ScoringOptions;
using testutil::BuildIndexedCorpus;

// Same adversarial regime as semantics_property_test: a tiny vocabulary so
// keywords co-occur heavily and documents legitimately tie.
std::vector<std::pair<std::string, std::string>> RandomCorpus(uint64_t seed,
                                                              size_t docs) {
  Random rng(seed);
  datagen::Vocabulary vocab(8);
  std::vector<std::pair<std::string, std::string>> out;
  std::function<std::unique_ptr<xml::Node>(size_t)> build =
      [&](size_t depth) -> std::unique_ptr<xml::Node> {
    auto node = xml::Node::MakeElement("n");
    size_t children = rng.Uniform(depth == 0 ? 1 : 4);
    if (rng.Bernoulli(0.7)) {
      std::string text;
      size_t words = 1 + rng.Uniform(4);
      for (size_t w = 0; w < words; ++w) {
        if (w > 0) text.push_back(' ');
        text += vocab.Word(rng.Uniform(vocab.size()));
      }
      node->AddChild(xml::Node::MakeText(std::move(text)));
    }
    for (size_t c = 0; c < children; ++c) node->AddChild(build(depth - 1));
    return node;
  };
  for (size_t d = 0; d < docs; ++d) {
    xml::Document doc;
    doc.uri = "doc" + std::to_string(d);
    doc.root = build(4);
    out.emplace_back(xml::Serialize(doc), doc.uri);
  }
  return out;
}

void ExpectIdenticalResponses(const query::QueryResponse& got,
                              const query::QueryResponse& oracle,
                              const std::string& label) {
  ASSERT_EQ(got.results.size(), oracle.results.size()) << label;
  for (size_t i = 0; i < got.results.size(); ++i) {
    EXPECT_EQ(got.results[i].id, oracle.results[i].id) << label << " i=" << i;
    // Bitwise equality, not NEAR: pruning only removes documents that never
    // reach the accumulator, so surviving ranks go through byte-identical
    // arithmetic.
    EXPECT_EQ(got.results[i].rank, oracle.results[i].rank)
        << label << " i=" << i;
  }
}

class PruningPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Pruned top-k == exhaustive top-k, ids and scores, across randomized
// corpora / k / term counts — with and without the decoded-block cache.
TEST_P(PruningPropertyTest, PrunedTopKMatchesExhaustiveOracle) {
  auto corpus = BuildIndexedCorpus(RandomCorpus(GetParam() + 4000, 10));
  datagen::Vocabulary vocab(8);
  Random rng(GetParam() * 29 + 11);
  index::BlockCache cache(1u << 20);

  query::DilQueryProcessor exhaustive(corpus->pool(IndexKind::kDil),
                                      corpus->lexicon(IndexKind::kDil),
                                      ScoringOptions{},
                                      /*use_skip_blocks=*/false);
  query::DilQueryProcessor skip_only(corpus->pool(IndexKind::kDil),
                                     corpus->lexicon(IndexKind::kDil),
                                     ScoringOptions{},
                                     /*use_skip_blocks=*/true,
                                     /*block_cache=*/nullptr,
                                     /*use_block_max_pruning=*/false);
  query::DilQueryProcessor pruned(corpus->pool(IndexKind::kDil),
                                  corpus->lexicon(IndexKind::kDil),
                                  ScoringOptions{},
                                  /*use_skip_blocks=*/true,
                                  /*block_cache=*/nullptr,
                                  /*use_block_max_pruning=*/true);
  query::DilQueryProcessor pruned_cached(corpus->pool(IndexKind::kDil),
                                         corpus->lexicon(IndexKind::kDil),
                                         ScoringOptions{},
                                         /*use_skip_blocks=*/true, &cache,
                                         /*use_block_max_pruning=*/true);

  for (int trial = 0; trial < 8; ++trial) {
    size_t nk = 1 + rng.Uniform(3);
    std::set<std::string> chosen;
    while (chosen.size() < nk) chosen.insert(vocab.Word(rng.Uniform(8)));
    std::vector<std::string> keywords(chosen.begin(), chosen.end());

    for (size_t m : {1u, 3u, 10u, 100u}) {
      auto oracle = exhaustive.Execute(keywords, m);
      ASSERT_TRUE(oracle.ok()) << oracle.status();
      for (auto* processor : {&skip_only, &pruned, &pruned_cached}) {
        auto got = processor->Execute(keywords, m);
        ASSERT_TRUE(got.ok()) << got.status();
        ExpectIdenticalResponses(*got, *oracle,
                                 "m=" + std::to_string(m) +
                                     " kw=" + keywords[0]);
      }
      EXPECT_EQ(oracle->stats.blocks_pruned, 0u);
    }
  }
}

// The HDIL processor (rank-prefix TA phase + possible DIL fallback) with a
// block cache attached must agree with the cacheless run.
TEST_P(PruningPropertyTest, HdilWithBlockCacheMatchesWithout) {
  auto corpus = BuildIndexedCorpus(RandomCorpus(GetParam() + 5000, 8));
  datagen::Vocabulary vocab(8);
  Random rng(GetParam() * 41 + 13);
  index::BlockCache cache(1u << 20);

  query::HdilQueryProcessor plain(corpus->pool(IndexKind::kHdil),
                                  corpus->lexicon(IndexKind::kHdil),
                                  ScoringOptions{});
  query::HdilQueryProcessor cached(corpus->pool(IndexKind::kHdil),
                                   corpus->lexicon(IndexKind::kHdil),
                                   ScoringOptions{}, query::HdilStrategyOptions{},
                                   &cache);
  for (int trial = 0; trial < 6; ++trial) {
    size_t nk = 1 + rng.Uniform(3);
    std::set<std::string> chosen;
    while (chosen.size() < nk) chosen.insert(vocab.Word(rng.Uniform(8)));
    std::vector<std::string> keywords(chosen.begin(), chosen.end());

    for (size_t m : {3u, 25u}) {
      auto a = plain.Execute(keywords, m);
      auto b = cached.Execute(keywords, m);
      ASSERT_TRUE(a.ok() && b.ok());
      ExpectIdenticalResponses(*b, *a, "hdil m=" + std::to_string(m));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruningPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

// One (spec, label) per registered codec plus quantized-rank variants; the
// label doubles as the gtest parameter name.
struct CodecParam {
  index::PostingFormatSpec spec;
  const char* label;
};

inline const std::vector<CodecParam>& AllCodecParams() {
  static const std::vector<CodecParam> params = {
      {{index::kPostingCodecVarint, index::RankEncoding::kFloat32},
       "varint_f32"},
      {{index::kPostingCodecBp128, index::RankEncoding::kFloat32},
       "bp128_f32"},
      {{index::kPostingCodecVarintGb, index::RankEncoding::kFloat32},
       "vgb_f32"},
      {{index::kPostingCodecBp128, index::RankEncoding::kQuantU16},
       "bp128_q16"},
      {{index::kPostingCodecVarintGb, index::RankEncoding::kQuantU8},
       "vgb_q8"},
  };
  return params;
}

std::string CodecParamName(
    const ::testing::TestParamInfo<CodecParam>& info) {
  return info.param.label;
}

class CodecPruningPropertyTest : public ::testing::TestWithParam<CodecParam> {
};

// The pruned-vs-exhaustive and skip-vs-exhaustive oracles must hold under
// every registered codec and under quantized ranks. All processors read the
// same index, so even quantized ranks compare bitwise — quantization error
// (bounded by RankQuantizationBound, exercised in posting/codec tests) is
// identical on both sides of the oracle.
TEST_P(CodecPruningPropertyTest, PrunedTopKMatchesExhaustiveOracle) {
  index::BuildOptions build;
  build.format = GetParam().spec;
  datagen::Vocabulary vocab(8);
  for (uint64_t seed : {3u, 7u}) {
    auto corpus = BuildIndexedCorpus(RandomCorpus(seed + 6000, 10), {}, 1024,
                                     build);
    ASSERT_EQ(corpus->lexicon(IndexKind::kDil)->format_spec(),
              GetParam().spec);
    Random rng(seed * 53 + 17);

    query::DilQueryProcessor exhaustive(corpus->pool(IndexKind::kDil),
                                        corpus->lexicon(IndexKind::kDil),
                                        ScoringOptions{},
                                        /*use_skip_blocks=*/false);
    query::DilQueryProcessor skip_only(corpus->pool(IndexKind::kDil),
                                       corpus->lexicon(IndexKind::kDil),
                                       ScoringOptions{},
                                       /*use_skip_blocks=*/true,
                                       /*block_cache=*/nullptr,
                                       /*use_block_max_pruning=*/false);
    query::DilQueryProcessor pruned(corpus->pool(IndexKind::kDil),
                                    corpus->lexicon(IndexKind::kDil),
                                    ScoringOptions{},
                                    /*use_skip_blocks=*/true,
                                    /*block_cache=*/nullptr,
                                    /*use_block_max_pruning=*/true);
    for (int trial = 0; trial < 4; ++trial) {
      size_t nk = 1 + rng.Uniform(3);
      std::set<std::string> chosen;
      while (chosen.size() < nk) chosen.insert(vocab.Word(rng.Uniform(8)));
      std::vector<std::string> keywords(chosen.begin(), chosen.end());

      for (size_t m : {1u, 3u, 100u}) {
        auto oracle = exhaustive.Execute(keywords, m);
        ASSERT_TRUE(oracle.ok()) << oracle.status();
        for (auto* processor : {&skip_only, &pruned}) {
          auto got = processor->Execute(keywords, m);
          ASSERT_TRUE(got.ok()) << got.status();
          ExpectIdenticalResponses(*got, *oracle,
                                   std::string(GetParam().label) +
                                       " m=" + std::to_string(m) +
                                       " kw=" + keywords[0]);
        }
      }
    }
  }
}

// HDIL's TA phase (rank-ordered prefix + random probes) under every codec.
TEST_P(CodecPruningPropertyTest, HdilMatchesDilOracle) {
  index::BuildOptions build;
  build.format = GetParam().spec;
  datagen::Vocabulary vocab(8);
  auto corpus =
      BuildIndexedCorpus(RandomCorpus(9001, 8), {}, 1024, build);
  Random rng(97);

  query::DilQueryProcessor oracle(corpus->pool(IndexKind::kDil),
                                  corpus->lexicon(IndexKind::kDil),
                                  ScoringOptions{},
                                  /*use_skip_blocks=*/false);
  query::HdilQueryProcessor hdil(corpus->pool(IndexKind::kHdil),
                                 corpus->lexicon(IndexKind::kHdil),
                                 ScoringOptions{});
  for (int trial = 0; trial < 4; ++trial) {
    size_t nk = 1 + rng.Uniform(3);
    std::set<std::string> chosen;
    while (chosen.size() < nk) chosen.insert(vocab.Word(rng.Uniform(8)));
    std::vector<std::string> keywords(chosen.begin(), chosen.end());
    for (size_t m : {3u, 25u}) {
      auto a = oracle.Execute(keywords, m);
      auto b = hdil.Execute(keywords, m);
      ASSERT_TRUE(a.ok()) << a.status();
      ASSERT_TRUE(b.ok()) << b.status();
      // Ids must agree exactly; ranks to within float noise (HDIL's TA
      // phase may aggregate in a different order than the DIL merge).
      ASSERT_EQ(b->results.size(), a->results.size()) << GetParam().label;
      for (size_t i = 0; i < a->results.size(); ++i) {
        EXPECT_EQ(b->results[i].id, a->results[i].id)
            << GetParam().label << " i=" << i;
        EXPECT_NEAR(b->results[i].rank, a->results[i].rank, 1e-9)
            << GetParam().label << " i=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Codecs, CodecPruningPropertyTest,
                         ::testing::ValuesIn(AllCodecParams()),
                         CodecParamName);

// Hand-built two-term index with full control over ElemRanks: every
// document holds both terms (document skipping can never help), the first
// few documents carry large ranks and the long tail is tiny — the regime
// block-max pruning exists for.
struct SyntheticIndex {
  std::unique_ptr<storage::PageFile> file;
  std::unique_ptr<storage::CostModel> cost_model;
  std::unique_ptr<storage::BufferPool> pool;
  index::Lexicon lexicon;
};

SyntheticIndex BuildSkewedIndex(uint32_t docs,
                                index::PostingFormatSpec spec = {}) {
  SyntheticIndex out;
  out.file = storage::PageFile::CreateInMemory();
  EXPECT_TRUE(out.lexicon.SetFormatSpec(spec).ok());
  auto codec = index::ResolvePostingCodec(spec);
  EXPECT_TRUE(codec.ok()) << codec.status();
  const char* terms[] = {"hot", "cold"};
  for (uint32_t t = 0; t < 2; ++t) {
    std::vector<index::Posting> postings;
    postings.reserve(docs);
    for (uint32_t d = 0; d < docs; ++d) {
      index::Posting posting;
      posting.id = dewey::DeweyId{d, 1};
      posting.elem_rank =
          d < 16 ? 1000.0f - static_cast<float>(d)
                 : 1.0f / static_cast<float>(d + 2);
      posting.positions = {t + 1};
      postings.push_back(std::move(posting));
    }
    index::PostingFormat format = index::MakeWriterFormat(
        *codec, spec, postings, /*delta_encode_ids=*/true);
    index::PostingListWriter writer(out.file.get(), format);
    for (const index::Posting& posting : postings) {
      auto loc = writer.Add(posting);
      EXPECT_TRUE(loc.ok()) << loc.status();
    }
    auto extent = writer.Finish();
    EXPECT_TRUE(extent.ok()) << extent.status();
    index::TermInfo info;
    info.list = *extent;
    info.skips = writer.TakeSkips();
    info.rank_scale = format.rank_scale;
    out.lexicon.Add(terms[t], std::move(info));
  }
  out.cost_model = std::make_unique<storage::CostModel>();
  out.pool = std::make_unique<storage::BufferPool>(out.file.get(), 1024,
                                                   out.cost_model.get());
  return out;
}

TEST(PruningTest, PrunesBlocksOnSkewedRanksAndMatchesOracle) {
  SyntheticIndex idx = BuildSkewedIndex(20000);
  std::vector<std::string> keywords = {"hot", "cold"};

  query::DilQueryProcessor pruned(idx.pool.get(), &idx.lexicon,
                                  ScoringOptions{});
  query::DilQueryProcessor exhaustive(idx.pool.get(), &idx.lexicon,
                                      ScoringOptions{},
                                      /*use_skip_blocks=*/false);
  auto fast = pruned.Execute(keywords, 10);
  auto slow = exhaustive.Execute(keywords, 10);
  ASSERT_TRUE(fast.ok()) << fast.status();
  ASSERT_TRUE(slow.ok()) << slow.status();

  ASSERT_EQ(fast->results.size(), 10u);
  ExpectIdenticalResponses(*fast, *slow, "skewed");
  // Every document holds both terms, so document-at-a-time skipping alone
  // reads everything; only the rank bounds can cut the tail.
  EXPECT_GT(fast->stats.blocks_pruned, 0u);
  EXPECT_LT(fast->stats.postings_scanned, slow->stats.postings_scanned);
  EXPECT_EQ(slow->stats.blocks_pruned, 0u);
}

// Same skewed regime under every codec and quantized-rank mode: pruning
// must still fire and still be invisible in the results. Both processors
// read the same index, so quantized ranks compare bitwise too.
class SkewedCodecPruningTest : public ::testing::TestWithParam<CodecParam> {};

TEST_P(SkewedCodecPruningTest, PrunesAndMatchesOracle) {
  SyntheticIndex idx = BuildSkewedIndex(10000, GetParam().spec);
  std::vector<std::string> keywords = {"hot", "cold"};

  query::DilQueryProcessor pruned(idx.pool.get(), &idx.lexicon,
                                  ScoringOptions{});
  query::DilQueryProcessor exhaustive(idx.pool.get(), &idx.lexicon,
                                      ScoringOptions{},
                                      /*use_skip_blocks=*/false);
  auto fast = pruned.Execute(keywords, 10);
  auto slow = exhaustive.Execute(keywords, 10);
  ASSERT_TRUE(fast.ok()) << fast.status();
  ASSERT_TRUE(slow.ok()) << slow.status();
  ASSERT_EQ(fast->results.size(), 10u);
  ExpectIdenticalResponses(*fast, *slow, GetParam().label);
  EXPECT_GT(fast->stats.blocks_pruned, 0u) << GetParam().label;
  EXPECT_LT(fast->stats.postings_scanned, slow->stats.postings_scanned)
      << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(Codecs, SkewedCodecPruningTest,
                         ::testing::ValuesIn(AllCodecParams()),
                         CodecParamName);

// Pruning must disable itself under scoring options where the bound is
// unsound (sum aggregation) and still match the oracle.
TEST(PruningTest, SumAggregationDisablesPruningButStaysCorrect) {
  SyntheticIndex idx = BuildSkewedIndex(5000);
  std::vector<std::string> keywords = {"hot", "cold"};
  ScoringOptions sum_options;
  sum_options.aggregation = query::RankAggregation::kSum;
  ASSERT_FALSE(query::SupportsBlockMaxPruning(sum_options));

  query::DilQueryProcessor pruned(idx.pool.get(), &idx.lexicon, sum_options);
  query::DilQueryProcessor exhaustive(idx.pool.get(), &idx.lexicon,
                                      sum_options,
                                      /*use_skip_blocks=*/false);
  auto fast = pruned.Execute(keywords, 10);
  auto slow = exhaustive.Execute(keywords, 10);
  ASSERT_TRUE(fast.ok() && slow.ok());
  ExpectIdenticalResponses(*fast, *slow, "sum");
  EXPECT_EQ(fast->stats.blocks_pruned, 0u);
}

// Repeating a query through one shared block cache serves pages without
// re-decoding: hits are reported and results stay identical.
TEST(BlockCacheTest, RepeatedQueryHitsCacheWithIdenticalResults) {
  SyntheticIndex idx = BuildSkewedIndex(2000);
  index::BlockCache cache(4u << 20);
  std::vector<std::string> keywords = {"hot", "cold"};

  query::DilQueryProcessor processor(idx.pool.get(), &idx.lexicon,
                                     ScoringOptions{},
                                     /*use_skip_blocks=*/true, &cache);
  auto first = processor.Execute(keywords, 10);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->stats.block_cache_hits, 0u);
  EXPECT_GT(cache.insertions(), 0u);

  auto second = processor.Execute(keywords, 10);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_GT(second->stats.block_cache_hits, 0u);
  ExpectIdenticalResponses(*second, *first, "cached repeat");

  cache.Clear();
  EXPECT_EQ(cache.cached_blocks(), 0u);
  EXPECT_EQ(cache.charged_bytes(), 0u);
  auto third = processor.Execute(keywords, 10);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->stats.block_cache_hits, 0u);  // invalidation took
  ExpectIdenticalResponses(*third, *first, "post-clear");
}

TEST(BlockCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  index::BlockCache::Block sample;
  sample.push_back(index::Posting{dewey::DeweyId{1, 2}, 1.0f, {1, 2, 3}});
  size_t charge = index::BlockCache::BlockCharge(sample);
  // Room for ~3 blocks in one shard.
  index::BlockCache cache(charge * 3 + charge / 2, /*num_shards=*/1);

  auto block = std::make_shared<const index::BlockCache::Block>(sample);
  for (uint32_t p = 0; p < 5; ++p) {
    cache.Insert(index::BlockCache::Key{1, p}, block);
  }
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_LE(cache.charged_bytes(), charge * 3 + charge / 2);
  // Oldest keys evicted, newest retained.
  EXPECT_EQ(cache.Lookup(index::BlockCache::Key{1, 0}), nullptr);
  EXPECT_NE(cache.Lookup(index::BlockCache::Key{1, 4}), nullptr);
  // Distinct file ids never alias.
  EXPECT_EQ(cache.Lookup(index::BlockCache::Key{2, 4}), nullptr);
}

TEST(BlockCacheTest, ZeroCapacityDisablesCaching) {
  index::BlockCache cache(0);
  auto block = std::make_shared<const index::BlockCache::Block>();
  cache.Insert(index::BlockCache::Key{1, 1}, block);
  EXPECT_EQ(cache.Lookup(index::BlockCache::Key{1, 1}), nullptr);
  EXPECT_EQ(cache.cached_blocks(), 0u);
}

TEST(KthRankTest, ThresholdTracksTheMthBestCandidate) {
  query::TopKAccumulator accumulator(2);
  EXPECT_TRUE(std::isinf(accumulator.KthRank()));
  accumulator.Add(dewey::DeweyId{1}, 5.0);
  EXPECT_TRUE(std::isinf(accumulator.KthRank()));  // heap not full yet
  accumulator.Add(dewey::DeweyId{2}, 3.0);
  EXPECT_EQ(accumulator.KthRank(), 3.0);
  accumulator.Add(dewey::DeweyId{3}, 4.0);
  EXPECT_EQ(accumulator.KthRank(), 4.0);
  // Re-adding an id with a higher rank re-sorts the threshold.
  accumulator.Add(dewey::DeweyId{2}, 6.0);
  EXPECT_EQ(accumulator.KthRank(), 5.0);
}

}  // namespace
}  // namespace xrank
