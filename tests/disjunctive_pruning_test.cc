// Disjunctive dynamic-pruning property tests: MaxScore, WAND and block-max
// WAND must be invisible in the results — identical ids AND identical
// (bitwise) ranks versus the exhaustive-merge oracle — across randomized
// corpora, codecs, quantized ranks, VBMW block sizing, k values and both
// aggregations; on a rank-skewed corpus they must actually prune; damaged
// bound metadata must degrade to no-prune, never to wrong results; and
// deadline/cancellation must unwind the pruned merges cleanly.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "datagen/vocabulary.h"
#include "index/codec.h"
#include "index/lexicon.h"
#include "index/posting.h"
#include "query/dil_query.h"
#include "query/disjunctive_merge.h"
#include "query/hdil_query.h"
#include "query/scored_cursor.h"
#include "query/scoring.h"
#include "storage/buffer_pool.h"
#include "storage/cost_model.h"
#include "storage/page_file.h"
#include "test_util.h"
#include "xml/serializer.h"

namespace xrank {
namespace {

using index::IndexKind;
using query::MergeAlgorithm;
using query::QueryOptions;
using query::ScoringOptions;
using testutil::BuildIndexedCorpus;

constexpr MergeAlgorithm kPrunedAlgorithms[] = {
    MergeAlgorithm::kMaxScore, MergeAlgorithm::kWand,
    MergeAlgorithm::kBlockMaxWand};

ScoringOptions Disjunctive() {
  ScoringOptions scoring;
  scoring.semantics = query::QuerySemantics::kDisjunctive;
  return scoring;
}

// Same adversarial regime as pruning_test: a tiny vocabulary so keywords
// co-occur heavily and documents legitimately tie.
std::vector<std::pair<std::string, std::string>> RandomCorpus(uint64_t seed,
                                                              size_t docs) {
  Random rng(seed);
  datagen::Vocabulary vocab(8);
  std::vector<std::pair<std::string, std::string>> out;
  std::function<std::unique_ptr<xml::Node>(size_t)> build =
      [&](size_t depth) -> std::unique_ptr<xml::Node> {
    auto node = xml::Node::MakeElement("n");
    size_t children = rng.Uniform(depth == 0 ? 1 : 4);
    if (rng.Bernoulli(0.7)) {
      std::string text;
      size_t words = 1 + rng.Uniform(4);
      for (size_t w = 0; w < words; ++w) {
        if (w > 0) text.push_back(' ');
        text += vocab.Word(rng.Uniform(vocab.size()));
      }
      node->AddChild(xml::Node::MakeText(std::move(text)));
    }
    for (size_t c = 0; c < children; ++c) node->AddChild(build(depth - 1));
    return node;
  };
  for (size_t d = 0; d < docs; ++d) {
    xml::Document doc;
    doc.uri = "doc" + std::to_string(d);
    doc.root = build(4);
    out.emplace_back(xml::Serialize(doc), doc.uri);
  }
  return out;
}

void ExpectIdenticalResponses(const query::QueryResponse& got,
                              const query::QueryResponse& oracle,
                              const std::string& label) {
  ASSERT_EQ(got.results.size(), oracle.results.size()) << label;
  for (size_t i = 0; i < got.results.size(); ++i) {
    EXPECT_EQ(got.results[i].id, oracle.results[i].id) << label << " i=" << i;
    // Bitwise equality, not NEAR: pruning only removes documents that never
    // reach the accumulator, so surviving ranks go through byte-identical
    // arithmetic.
    EXPECT_EQ(got.results[i].rank, oracle.results[i].rank)
        << label << " i=" << i;
  }
}

class DisjunctivePruningTest : public ::testing::TestWithParam<uint64_t> {};

// Every pruned algorithm == the exhaustive oracle, ids and scores, across
// randomized corpora / k / term counts, under disjunctive semantics.
TEST_P(DisjunctivePruningTest, PrunedTopKMatchesExhaustiveOracle) {
  auto corpus = BuildIndexedCorpus(RandomCorpus(GetParam() + 7000, 10));
  datagen::Vocabulary vocab(8);
  Random rng(GetParam() * 31 + 7);

  query::DilQueryProcessor oracle(corpus->pool(IndexKind::kDil),
                                  corpus->lexicon(IndexKind::kDil),
                                  Disjunctive(),
                                  /*use_skip_blocks=*/false);
  query::DilQueryProcessor pruned(corpus->pool(IndexKind::kDil),
                                  corpus->lexicon(IndexKind::kDil),
                                  Disjunctive());

  for (int trial = 0; trial < 6; ++trial) {
    size_t nk = 1 + rng.Uniform(4);
    std::set<std::string> chosen;
    while (chosen.size() < nk) chosen.insert(vocab.Word(rng.Uniform(8)));
    std::vector<std::string> keywords(chosen.begin(), chosen.end());

    for (size_t m : {1u, 3u, 10u, 100u}) {
      auto expected = oracle.Execute(keywords, m);
      ASSERT_TRUE(expected.ok()) << expected.status();
      EXPECT_EQ(expected->stats.algorithm, "exhaustive");
      for (MergeAlgorithm algorithm : kPrunedAlgorithms) {
        QueryOptions options;
        options.algorithm = algorithm;
        auto got = pruned.Execute(keywords, m, options);
        ASSERT_TRUE(got.ok()) << got.status();
        std::string label = std::string(MergeAlgorithmName(algorithm)) +
                            " m=" + std::to_string(m) + " kw=" + keywords[0];
        // BMW may only degrade to itself here (max aggregation).
        EXPECT_EQ(got->stats.algorithm, MergeAlgorithmName(algorithm))
            << label;
        ExpectIdenticalResponses(*got, *expected, label);
      }
    }
  }
}

// Explicitly-requested pruned algorithms on CONJUNCTIVE queries (mixed
// mode): the per-document bounds never assume a missing keyword, so the
// results must still match the conjunctive exhaustive merge bitwise.
TEST_P(DisjunctivePruningTest, MixedModeConjunctiveMatchesOracle) {
  auto corpus = BuildIndexedCorpus(RandomCorpus(GetParam() + 8000, 10));
  datagen::Vocabulary vocab(8);
  Random rng(GetParam() * 37 + 3);

  query::DilQueryProcessor oracle(corpus->pool(IndexKind::kDil),
                                  corpus->lexicon(IndexKind::kDil),
                                  ScoringOptions{},
                                  /*use_skip_blocks=*/false);
  query::DilQueryProcessor pruned(corpus->pool(IndexKind::kDil),
                                  corpus->lexicon(IndexKind::kDil),
                                  ScoringOptions{});

  for (int trial = 0; trial < 4; ++trial) {
    size_t nk = 2 + rng.Uniform(2);
    std::set<std::string> chosen;
    while (chosen.size() < nk) chosen.insert(vocab.Word(rng.Uniform(8)));
    std::vector<std::string> keywords(chosen.begin(), chosen.end());
    for (size_t m : {1u, 10u}) {
      auto expected = oracle.Execute(keywords, m);
      ASSERT_TRUE(expected.ok()) << expected.status();
      for (MergeAlgorithm algorithm : kPrunedAlgorithms) {
        QueryOptions options;
        options.algorithm = algorithm;
        auto got = pruned.Execute(keywords, m, options);
        ASSERT_TRUE(got.ok()) << got.status();
        ExpectIdenticalResponses(*got, *expected,
                                 std::string("mixed ") +
                                     MergeAlgorithmName(algorithm) +
                                     " m=" + std::to_string(m));
      }
    }
  }
}

// A pruned-algorithm request on a processor that cannot run it (built
// without block-max pruning) degrades to the conjunctive DAAT skip path —
// the next-fastest exact strategy — not silently to the exhaustive merge;
// the stats label reports what actually ran.
TEST_P(DisjunctivePruningTest, UnavailablePrunedRequestFallsBackToDaat) {
  auto corpus = BuildIndexedCorpus(RandomCorpus(GetParam() + 8500, 8));
  datagen::Vocabulary vocab(8);
  Random rng(GetParam() * 41 + 13);

  query::DilQueryProcessor oracle(corpus->pool(IndexKind::kDil),
                                  corpus->lexicon(IndexKind::kDil),
                                  ScoringOptions{},
                                  /*use_skip_blocks=*/false);
  query::DilQueryProcessor skip_only(corpus->pool(IndexKind::kDil),
                                     corpus->lexicon(IndexKind::kDil),
                                     ScoringOptions{},
                                     /*use_skip_blocks=*/true,
                                     /*block_cache=*/nullptr,
                                     /*use_block_max_pruning=*/false);
  for (int trial = 0; trial < 3; ++trial) {
    std::set<std::string> chosen;
    while (chosen.size() < 2) chosen.insert(vocab.Word(rng.Uniform(8)));
    std::vector<std::string> keywords(chosen.begin(), chosen.end());
    auto expected = oracle.Execute(keywords, 10);
    ASSERT_TRUE(expected.ok()) << expected.status();
    for (MergeAlgorithm algorithm : kPrunedAlgorithms) {
      QueryOptions options;
      options.algorithm = algorithm;
      auto got = skip_only.Execute(keywords, 10, options);
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(got->stats.algorithm, "daat")
          << MergeAlgorithmName(algorithm);
      ExpectIdenticalResponses(*got, *expected,
                               std::string("daat fallback from ") +
                                   MergeAlgorithmName(algorithm));
    }
    // An explicit exhaustive request still forces the oracle merge.
    QueryOptions exhaustive;
    exhaustive.algorithm = MergeAlgorithm::kExhaustive;
    auto forced = skip_only.Execute(keywords, 10, exhaustive);
    ASSERT_TRUE(forced.ok()) << forced.status();
    EXPECT_EQ(forced->stats.algorithm, "exhaustive");
  }
}

// The HDIL processor now serves disjunctive queries by delegating to DIL.
TEST_P(DisjunctivePruningTest, HdilDelegatesDisjunctiveQueries) {
  auto corpus = BuildIndexedCorpus(RandomCorpus(GetParam() + 9000, 8));
  datagen::Vocabulary vocab(8);
  Random rng(GetParam() * 43 + 29);

  query::DilQueryProcessor oracle(corpus->pool(IndexKind::kDil),
                                  corpus->lexicon(IndexKind::kDil),
                                  Disjunctive(),
                                  /*use_skip_blocks=*/false);
  query::HdilQueryProcessor hdil(corpus->pool(IndexKind::kHdil),
                                 corpus->lexicon(IndexKind::kHdil),
                                 Disjunctive());
  for (int trial = 0; trial < 3; ++trial) {
    size_t nk = 1 + rng.Uniform(3);
    std::set<std::string> chosen;
    while (chosen.size() < nk) chosen.insert(vocab.Word(rng.Uniform(8)));
    std::vector<std::string> keywords(chosen.begin(), chosen.end());
    auto expected = oracle.Execute(keywords, 10);
    auto got = hdil.Execute(keywords, 10);
    ASSERT_TRUE(expected.ok()) << expected.status();
    ASSERT_TRUE(got.ok()) << got.status();
    ExpectIdenticalResponses(*got, *expected, "hdil disjunctive");
    EXPECT_FALSE(got->stats.algorithm.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisjunctivePruningTest,
                         ::testing::Range<uint64_t>(1, 9));

// One (spec, label) per registered codec / rank encoding / VBMW block
// sizing; the label doubles as the gtest parameter name.
struct CodecParam {
  index::PostingFormatSpec spec;
  const char* label;
};

inline std::vector<CodecParam> AllCodecParams() {
  std::vector<CodecParam> params = {
      {{index::kPostingCodecVarint, index::RankEncoding::kFloat32},
       "varint_f32"},
      {{index::kPostingCodecBp128, index::RankEncoding::kFloat32},
       "bp128_f32"},
      {{index::kPostingCodecVarintGb, index::RankEncoding::kFloat32},
       "vgb_f32"},
      {{index::kPostingCodecBp128, index::RankEncoding::kQuantU16},
       "bp128_q16"},
      {{index::kPostingCodecVarintGb, index::RankEncoding::kQuantU8},
       "vgb_q8"},
  };
  CodecParam vbmw{{index::kPostingCodecVarint, index::RankEncoding::kFloat32},
                  "varint_f32_vbmw"};
  vbmw.spec.vbmw_lambda_milli = 100;
  params.push_back(vbmw);
  CodecParam vbmw_q{
      {index::kPostingCodecBp128, index::RankEncoding::kQuantU16},
      "bp128_q16_vbmw"};
  vbmw_q.spec.vbmw_lambda_milli = 100;
  params.push_back(vbmw_q);
  return params;
}

std::string CodecParamName(
    const ::testing::TestParamInfo<CodecParam>& info) {
  return info.param.label;
}

class DisjunctiveCodecPruningTest
    : public ::testing::TestWithParam<CodecParam> {};

// The pruned-vs-exhaustive oracle must hold under every registered codec,
// under quantized ranks, and under variable-sized (VBMW) blocks — for both
// aggregations. All processors read the same index, so even quantized
// ranks compare bitwise.
TEST_P(DisjunctiveCodecPruningTest, PrunedTopKMatchesExhaustiveOracle) {
  index::BuildOptions build;
  build.format = GetParam().spec;
  datagen::Vocabulary vocab(8);
  for (uint64_t seed : {5u, 11u}) {
    auto corpus = BuildIndexedCorpus(RandomCorpus(seed + 7500, 10), {}, 1024,
                                     build);
    ASSERT_EQ(corpus->lexicon(IndexKind::kDil)->format_spec(),
              GetParam().spec);
    Random rng(seed * 59 + 23);

    for (query::RankAggregation aggregation :
         {query::RankAggregation::kMax, query::RankAggregation::kSum}) {
      ScoringOptions scoring = Disjunctive();
      scoring.aggregation = aggregation;
      query::DilQueryProcessor oracle(corpus->pool(IndexKind::kDil),
                                      corpus->lexicon(IndexKind::kDil),
                                      scoring,
                                      /*use_skip_blocks=*/false);
      query::DilQueryProcessor pruned(corpus->pool(IndexKind::kDil),
                                      corpus->lexicon(IndexKind::kDil),
                                      scoring);
      for (int trial = 0; trial < 3; ++trial) {
        size_t nk = 1 + rng.Uniform(3);
        std::set<std::string> chosen;
        while (chosen.size() < nk) chosen.insert(vocab.Word(rng.Uniform(8)));
        std::vector<std::string> keywords(chosen.begin(), chosen.end());

        for (size_t m : {1u, 3u, 100u}) {
          auto expected = oracle.Execute(keywords, m);
          ASSERT_TRUE(expected.ok()) << expected.status();
          for (MergeAlgorithm algorithm : kPrunedAlgorithms) {
            QueryOptions options;
            options.algorithm = algorithm;
            auto got = pruned.Execute(keywords, m, options);
            ASSERT_TRUE(got.ok()) << got.status();
            ExpectIdenticalResponses(
                *got, *expected,
                std::string(GetParam().label) + " " +
                    MergeAlgorithmName(algorithm) +
                    (aggregation == query::RankAggregation::kSum ? " sum"
                                                                 : " max") +
                    " m=" + std::to_string(m));
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Codecs, DisjunctiveCodecPruningTest,
                         ::testing::ValuesIn(AllCodecParams()),
                         CodecParamName);

// Hand-built two-term index with full control over ElemRanks: every
// document holds both terms, the first few documents carry large ranks and
// the long tail is tiny — the regime score pruning exists for.
struct SyntheticIndex {
  std::unique_ptr<storage::PageFile> file;
  std::unique_ptr<storage::CostModel> cost_model;
  std::unique_ptr<storage::BufferPool> pool;
  index::Lexicon lexicon;
};

SyntheticIndex BuildSkewedIndex(uint32_t docs,
                                index::PostingFormatSpec spec = {}) {
  SyntheticIndex out;
  out.file = storage::PageFile::CreateInMemory();
  EXPECT_TRUE(out.lexicon.SetFormatSpec(spec).ok());
  auto codec = index::ResolvePostingCodec(spec);
  EXPECT_TRUE(codec.ok()) << codec.status();
  const char* terms[] = {"hot", "cold"};
  for (uint32_t t = 0; t < 2; ++t) {
    std::vector<index::Posting> postings;
    postings.reserve(docs);
    for (uint32_t d = 0; d < docs; ++d) {
      index::Posting posting;
      posting.id = dewey::DeweyId{d, 1};
      posting.elem_rank =
          d < 16 ? 1000.0f - static_cast<float>(d)
                 : 1.0f / static_cast<float>(d + 2);
      posting.positions = {t + 1};
      postings.push_back(std::move(posting));
    }
    index::PostingFormat format = index::MakeWriterFormat(
        *codec, spec, postings, /*delta_encode_ids=*/true);
    index::PostingListWriter writer(out.file.get(), format);
    for (const index::Posting& posting : postings) {
      auto loc = writer.Add(posting);
      EXPECT_TRUE(loc.ok()) << loc.status();
    }
    auto extent = writer.Finish();
    EXPECT_TRUE(extent.ok()) << extent.status();
    index::TermInfo info;
    info.list = *extent;
    info.skips = writer.TakeSkips();
    info.rank_scale = format.rank_scale;
    info.max_doc_rank = writer.max_doc_rank();
    out.lexicon.Add(terms[t], std::move(info));
  }
  out.cost_model = std::make_unique<storage::CostModel>();
  out.pool = std::make_unique<storage::BufferPool>(out.file.get(), 1024,
                                                   out.cost_model.get());
  return out;
}

// On the skewed corpus, MaxScore and block-max WAND must actually skip
// documents and pages — and still match the oracle bitwise.
TEST(DisjunctiveSkewTest, MaxScoreAndBmwPruneOnSkewedRanks) {
  SyntheticIndex idx = BuildSkewedIndex(20000);
  std::vector<std::string> keywords = {"hot", "cold"};

  query::DilQueryProcessor pruned(idx.pool.get(), &idx.lexicon,
                                  Disjunctive());
  query::DilQueryProcessor exhaustive(idx.pool.get(), &idx.lexicon,
                                      Disjunctive(),
                                      /*use_skip_blocks=*/false);
  auto slow = exhaustive.Execute(keywords, 10);
  ASSERT_TRUE(slow.ok()) << slow.status();
  ASSERT_EQ(slow->results.size(), 10u);

  for (MergeAlgorithm algorithm :
       {MergeAlgorithm::kMaxScore, MergeAlgorithm::kBlockMaxWand}) {
    QueryOptions options;
    options.algorithm = algorithm;
    auto fast = pruned.Execute(keywords, 10, options);
    ASSERT_TRUE(fast.ok()) << fast.status();
    const char* label = MergeAlgorithmName(algorithm);
    ExpectIdenticalResponses(*fast, *slow, label);
    // Run widening is aggressive here: once the heap is full, one prune
    // decision proves the whole tail irrelevant.
    EXPECT_GT(fast->stats.docs_skipped, 0u) << label;
    EXPECT_GT(fast->stats.blocks_pruned, 0u) << label;
    EXPECT_LT(fast->stats.postings_scanned, slow->stats.postings_scanned)
        << label;
  }

  // kAuto on a 2-term disjunctive query under max aggregation resolves to
  // block-max WAND.
  auto auto_run = pruned.Execute(keywords, 10);
  ASSERT_TRUE(auto_run.ok()) << auto_run.status();
  EXPECT_EQ(auto_run->stats.algorithm, "bmw");
  ExpectIdenticalResponses(*auto_run, *slow, "auto");
}

// Asymmetric corpus: "hot" appears only every `stride` documents with a
// large rank, "cold" in every document with a tiny one. Once the top-k
// fills with hot documents the threshold dwarfs cold's list-level bound —
// the regime where list-level pruning pays off even without page maxima.
SyntheticIndex BuildSparseHotIndex(uint32_t docs, uint32_t stride) {
  SyntheticIndex out;
  out.file = storage::PageFile::CreateInMemory();
  index::PostingFormatSpec spec;
  EXPECT_TRUE(out.lexicon.SetFormatSpec(spec).ok());
  auto codec = index::ResolvePostingCodec(spec);
  EXPECT_TRUE(codec.ok()) << codec.status();
  struct TermList {
    const char* term;
    std::vector<index::Posting> postings;
  };
  std::vector<TermList> terms(2);
  terms[0].term = "hot";
  terms[1].term = "cold";
  for (uint32_t d = 0; d < docs; ++d) {
    if (d % stride == 0) {
      index::Posting posting;
      posting.id = dewey::DeweyId{d, 1};
      posting.elem_rank = 1000.0f - static_cast<float>(d / stride);
      posting.positions = {1};
      terms[0].postings.push_back(std::move(posting));
    }
    index::Posting posting;
    posting.id = dewey::DeweyId{d, 1};
    posting.elem_rank = 1.0f / static_cast<float>(d + 2);
    posting.positions = {2};
    terms[1].postings.push_back(std::move(posting));
  }
  for (TermList& term : terms) {
    index::PostingFormat format = index::MakeWriterFormat(
        *codec, spec, term.postings, /*delta_encode_ids=*/true);
    index::PostingListWriter writer(out.file.get(), format);
    for (const index::Posting& posting : term.postings) {
      auto loc = writer.Add(posting);
      EXPECT_TRUE(loc.ok()) << loc.status();
    }
    auto extent = writer.Finish();
    EXPECT_TRUE(extent.ok()) << extent.status();
    index::TermInfo info;
    info.list = *extent;
    info.skips = writer.TakeSkips();
    info.rank_scale = format.rank_scale;
    info.max_doc_rank = writer.max_doc_rank();
    out.lexicon.Add(term.term, std::move(info));
  }
  out.cost_model = std::make_unique<storage::CostModel>();
  out.pool = std::make_unique<storage::BufferPool>(out.file.get(), 1024,
                                                   out.cost_model.get());
  return out;
}

// Under sum aggregation the per-page maxima are unsound, but the
// serialized per-term max_doc_rank still gives MaxScore and WAND a sound
// list-level bound — they must keep pruning. A BMW request must degrade to
// plain WAND.
TEST(DisjunctiveSkewTest, SumAggregationUsesListBoundsAndDegradesBmw) {
  SyntheticIndex idx = BuildSparseHotIndex(20000, 1000);
  std::vector<std::string> keywords = {"hot", "cold"};
  ScoringOptions scoring = Disjunctive();
  scoring.aggregation = query::RankAggregation::kSum;
  ASSERT_TRUE(query::SupportsScorePruning(scoring));
  ASSERT_FALSE(query::SupportsBlockMaxBounds(scoring));

  query::DilQueryProcessor pruned(idx.pool.get(), &idx.lexicon, scoring);
  query::DilQueryProcessor exhaustive(idx.pool.get(), &idx.lexicon, scoring,
                                      /*use_skip_blocks=*/false);
  auto slow = exhaustive.Execute(keywords, 10);
  ASSERT_TRUE(slow.ok()) << slow.status();

  QueryOptions bmw;
  bmw.algorithm = MergeAlgorithm::kBlockMaxWand;
  auto degraded = pruned.Execute(keywords, 10, bmw);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_EQ(degraded->stats.algorithm, "wand");
  ExpectIdenticalResponses(*degraded, *slow, "bmw->wand");
  EXPECT_GT(degraded->stats.docs_skipped, 0u);
  EXPECT_LT(degraded->stats.postings_scanned, slow->stats.postings_scanned);

  // MaxScore never prunes a candidate here (the essential hot list's bound
  // always reaches theta) — its win is demoting cold to the non-essential
  // partition, whose tail is advanced lazily instead of being merged.
  QueryOptions maxscore;
  maxscore.algorithm = MergeAlgorithm::kMaxScore;
  auto fast = pruned.Execute(keywords, 10, maxscore);
  ASSERT_TRUE(fast.ok()) << fast.status();
  ExpectIdenticalResponses(*fast, *slow, "maxscore sum");
  EXPECT_GT(fast->stats.pivot_advances, 0u);
  EXPECT_LT(fast->stats.postings_scanned, slow->stats.postings_scanned);
}

// Damaged bound metadata — non-finite per-page max_rank and per-term
// max_doc_rank — must degrade to "never prune", not to wrong results.
TEST(DisjunctiveSkewTest, CorruptedBoundsDegradeToNoPrune) {
  SyntheticIndex idx = BuildSkewedIndex(5000);
  std::vector<std::string> keywords = {"hot", "cold"};

  // Rebuild the lexicon with poisoned descriptors.
  index::Lexicon damaged;
  ASSERT_TRUE(damaged.SetFormatSpec(idx.lexicon.format_spec()).ok());
  for (const char* term : {"hot", "cold"}) {
    const index::TermInfo* info = idx.lexicon.Find(term);
    ASSERT_NE(info, nullptr);
    index::TermInfo bad = *info;
    bad.max_doc_rank = std::numeric_limits<float>::quiet_NaN();
    for (index::SkipEntry& skip : bad.skips) {
      skip.max_rank = std::numeric_limits<float>::infinity();
    }
    damaged.Add(term, std::move(bad));
  }

  query::DilQueryProcessor exhaustive(idx.pool.get(), &idx.lexicon,
                                      Disjunctive(),
                                      /*use_skip_blocks=*/false);
  auto slow = exhaustive.Execute(keywords, 10);
  ASSERT_TRUE(slow.ok()) << slow.status();

  for (query::RankAggregation aggregation :
       {query::RankAggregation::kMax, query::RankAggregation::kSum}) {
    ScoringOptions scoring = Disjunctive();
    scoring.aggregation = aggregation;
    query::DilQueryProcessor oracle(idx.pool.get(), &idx.lexicon, scoring,
                                    /*use_skip_blocks=*/false);
    auto expected = oracle.Execute(keywords, 10);
    ASSERT_TRUE(expected.ok()) << expected.status();
    query::DilQueryProcessor processor(idx.pool.get(), &damaged, scoring);
    for (MergeAlgorithm algorithm : kPrunedAlgorithms) {
      QueryOptions options;
      options.algorithm = algorithm;
      auto got = processor.Execute(keywords, 10, options);
      ASSERT_TRUE(got.ok()) << got.status();
      const char* label = MergeAlgorithmName(algorithm);
      ExpectIdenticalResponses(*got, *expected, label);
      // Infinite bounds can never fall strictly below the threshold.
      EXPECT_EQ(got->stats.docs_skipped, 0u) << label;
      EXPECT_EQ(got->stats.blocks_pruned, 0u) << label;
    }
  }
}

// Cancellation mid-merge: every pruned algorithm unwinds with a clean
// DeadlineExceeded (its first cooperative check is inside the merge loop),
// or serves a correct partial top-k when allowed.
TEST(DisjunctiveSkewTest, CancellationUnwindsPrunedMerges) {
  SyntheticIndex idx = BuildSkewedIndex(5000);
  std::vector<std::string> keywords = {"hot", "cold"};
  query::DilQueryProcessor processor(idx.pool.get(), &idx.lexicon,
                                     Disjunctive());
  std::atomic<bool> cancel{true};

  for (MergeAlgorithm algorithm : kPrunedAlgorithms) {
    QueryOptions strict;
    strict.algorithm = algorithm;
    strict.cancel = &cancel;
    auto failed = processor.Execute(keywords, 10, strict);
    ASSERT_FALSE(failed.ok()) << MergeAlgorithmName(algorithm);
    EXPECT_EQ(failed.status().code(), StatusCode::kDeadlineExceeded)
        << MergeAlgorithmName(algorithm);

    QueryOptions partial = strict;
    partial.allow_partial_results = true;
    auto served = processor.Execute(keywords, 10, partial);
    ASSERT_TRUE(served.ok()) << served.status();
    EXPECT_TRUE(served->stats.partial) << MergeAlgorithmName(algorithm);
  }
}

// VBMW block sizing: a positive lambda must close pages early on the
// rank-skewed list (strictly more, smaller pages than the dense writer),
// and queries over the variable-block index stay oracle-exact.
TEST(VbmwBlockTest, LambdaProducesMorePagesAndStaysExact) {
  index::PostingFormatSpec dense_spec;
  index::PostingFormatSpec vbmw_spec;
  vbmw_spec.vbmw_lambda_milli = 2000;  // lambda = 2.0 rank units of waste

  SyntheticIndex dense = BuildSkewedIndex(20000, dense_spec);
  SyntheticIndex vbmw = BuildSkewedIndex(20000, vbmw_spec);
  ASSERT_EQ(vbmw.lexicon.format_spec().vbmw_lambda_milli, 2000u);

  const index::TermInfo* dense_info = dense.lexicon.Find("hot");
  const index::TermInfo* vbmw_info = vbmw.lexicon.Find("hot");
  ASSERT_NE(dense_info, nullptr);
  ASSERT_NE(vbmw_info, nullptr);
  EXPECT_GT(vbmw_info->skips.size(), dense_info->skips.size());
  EXPECT_EQ(vbmw_info->list.entry_count, dense_info->list.entry_count);

  std::vector<std::string> keywords = {"hot", "cold"};
  query::DilQueryProcessor oracle(vbmw.pool.get(), &vbmw.lexicon,
                                  Disjunctive(),
                                  /*use_skip_blocks=*/false);
  query::DilQueryProcessor pruned(vbmw.pool.get(), &vbmw.lexicon,
                                  Disjunctive());
  auto slow = oracle.Execute(keywords, 10);
  ASSERT_TRUE(slow.ok()) << slow.status();
  for (MergeAlgorithm algorithm : kPrunedAlgorithms) {
    QueryOptions options;
    options.algorithm = algorithm;
    auto fast = pruned.Execute(keywords, 10, options);
    ASSERT_TRUE(fast.ok()) << fast.status();
    ExpectIdenticalResponses(*fast, *slow,
                             std::string("vbmw ") +
                                 MergeAlgorithmName(algorithm));
  }
}

TEST(ResolveMergeAlgorithmTest, HeuristicAndDegradations) {
  ScoringOptions max_agg = Disjunctive();
  ScoringOptions sum_agg = Disjunctive();
  sum_agg.aggregation = query::RankAggregation::kSum;
  ScoringOptions growing = Disjunctive();
  growing.decay = 1.5;  // no sound bound: decay amplifies deep scores

  // Auto: few-term + sound page bounds -> BMW; otherwise MaxScore.
  EXPECT_EQ(query::ResolveMergeAlgorithm(MergeAlgorithm::kAuto, max_agg, 2),
            MergeAlgorithm::kBlockMaxWand);
  EXPECT_EQ(query::ResolveMergeAlgorithm(MergeAlgorithm::kAuto, max_agg, 8),
            MergeAlgorithm::kMaxScore);
  EXPECT_EQ(query::ResolveMergeAlgorithm(MergeAlgorithm::kAuto, sum_agg, 2),
            MergeAlgorithm::kMaxScore);
  // BMW degrades to WAND when page bounds are unsound.
  EXPECT_EQ(query::ResolveMergeAlgorithm(MergeAlgorithm::kBlockMaxWand,
                                         sum_agg, 2),
            MergeAlgorithm::kWand);
  EXPECT_EQ(query::ResolveMergeAlgorithm(MergeAlgorithm::kBlockMaxWand,
                                         max_agg, 2),
            MergeAlgorithm::kBlockMaxWand);
  // No sound list bound at all -> exhaustive, whatever was asked.
  for (MergeAlgorithm algorithm : kPrunedAlgorithms) {
    EXPECT_EQ(query::ResolveMergeAlgorithm(algorithm, growing, 2),
              MergeAlgorithm::kExhaustive);
  }
  EXPECT_EQ(query::ResolveMergeAlgorithm(MergeAlgorithm::kExhaustive,
                                         max_agg, 2),
            MergeAlgorithm::kExhaustive);
}

TEST(TermScoreBoundTest, SoundnessFallbacks) {
  ScoringOptions max_agg = Disjunctive();
  ScoringOptions sum_agg = Disjunctive();
  sum_agg.aggregation = query::RankAggregation::kSum;

  index::TermInfo info;
  info.list.entry_count = 10;
  info.skips.push_back(index::SkipEntry{0, dewey::DeweyId({0, 1}), 3.5f});
  info.skips.push_back(index::SkipEntry{1, dewey::DeweyId({5, 1}), 7.25f});
  info.max_doc_rank = 12.5f;

  EXPECT_EQ(query::TermScoreBound(info, max_agg), 7.25);
  EXPECT_EQ(query::TermScoreBound(info, sum_agg), 12.5);

  // Unknown / damaged metadata -> +inf (no pruning), never a finite lie.
  index::TermInfo unknown = info;
  unknown.max_doc_rank = 0.0f;  // pre-field serialized blobs read back as 0
  EXPECT_TRUE(std::isinf(query::TermScoreBound(unknown, sum_agg)));
  index::TermInfo damaged = info;
  damaged.skips[1].max_rank = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isinf(query::TermScoreBound(damaged, max_agg)));
  index::TermInfo no_skips = info;
  no_skips.skips.clear();
  EXPECT_TRUE(std::isinf(query::TermScoreBound(no_skips, max_agg)));

  // Empty lists contribute nothing.
  index::TermInfo empty;
  EXPECT_EQ(query::TermScoreBound(empty, max_agg), 0.0);
  EXPECT_EQ(query::TermScoreBound(empty, sum_agg), 0.0);
}

// The serialized per-term max_doc_rank round-trips through the lexicon
// blob and dominates every per-document decoded-rank sum.
TEST(MaxDocRankTest, WriterTracksPerDocumentSums) {
  auto file = storage::PageFile::CreateInMemory();
  index::PostingFormatSpec spec;
  std::vector<index::Posting> postings;
  // Document 3 holds three occurrences summing to 6.0 — larger than any
  // single rank in the list.
  const std::pair<uint32_t, float> entries[] = {
      {1, 2.5f}, {3, 1.0f}, {3, 2.0f}, {3, 3.0f}, {7, 4.0f}};
  uint32_t component = 1;
  for (const auto& [doc, rank] : entries) {
    index::Posting posting;
    posting.id = dewey::DeweyId{doc, component++};
    posting.elem_rank = rank;
    posting.positions = {1};
    postings.push_back(std::move(posting));
  }
  auto codec = index::ResolvePostingCodec(spec);
  ASSERT_TRUE(codec.ok()) << codec.status();
  index::PostingFormat format = index::MakeWriterFormat(
      *codec, spec, postings, /*delta_encode_ids=*/true);
  index::PostingListWriter writer(file.get(), format);
  for (const index::Posting& posting : postings) {
    ASSERT_TRUE(writer.Add(posting).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_GE(writer.max_doc_rank(), 6.0f);
  EXPECT_LE(writer.max_doc_rank(), 6.01f);
}

}  // namespace
}  // namespace xrank
