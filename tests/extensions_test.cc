// Tests for the extension features: parser depth limiting, element-
// granularity HITS (paper footnote 1), and path-filtered keyword queries
// (paper Section 7 future work).

#include <gtest/gtest.h>

#include "core/engine.h"
#include "rank/hits.h"
#include "test_util.h"
#include "xml/parser.h"

namespace xrank {
namespace {

using core::EngineOptions;
using core::XRankEngine;
using index::IndexKind;

// --- parser depth guard ---

TEST(ParserDepthTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 600; ++i) deep += "<a>";
  deep += "x";
  for (int i = 0; i < 600; ++i) deep += "</a>";
  auto doc = xml::ParseDocument(deep, "deep");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
  EXPECT_NE(doc.status().message().find("depth"), std::string::npos);

  xml::ParseOptions options;
  options.max_depth = 1000;
  EXPECT_TRUE(xml::ParseDocument(deep, "deep", options).ok());
}

TEST(ParserDepthTest, DefaultAllowsRealisticDepth) {
  std::string nested;
  for (int i = 0; i < 100; ++i) nested += "<n>";
  nested += "payload";
  for (int i = 0; i < 100; ++i) nested += "</n>";
  EXPECT_TRUE(xml::ParseDocument(nested, "ok").ok());
}

// --- element-granularity HITS ---

TEST(HitsTest, AuthorityFollowsInLinks) {
  // Hand-built: doc C's elements all cite paper A; paper B uncited.
  graph::XmlGraph graph;
  uint32_t tag = graph.InternName("e");
  auto make_doc = [&](const std::string& uri) {
    uint32_t doc = graph.AddDocument(uri);
    graph::NodeId root = graph.AddElement(tag, graph::kInvalidNode, doc);
    graph.SetDocumentRoot(doc, root);
    return root;
  };
  graph::NodeId a = make_doc("a");
  graph::NodeId b = make_doc("b");
  uint32_t doc_c = graph.AddDocument("c");
  graph::NodeId c_root = graph.AddElement(tag, graph::kInvalidNode, doc_c);
  graph.SetDocumentRoot(doc_c, c_root);
  std::vector<graph::NodeId> citers;
  for (int i = 0; i < 5; ++i) {
    graph::NodeId citer = graph.AddElement(tag, c_root, doc_c);
    graph.AddHyperlink(citer, a);
    citers.push_back(citer);
  }
  graph.FinalizeStructure();

  auto result = rank::ComputeHits(graph, rank::HitsOptions{});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  // A (cited) has more authority than B (uncited).
  EXPECT_GT(result->authorities[a], result->authorities[b]);
  // The citing elements are the hubs.
  EXPECT_GT(result->hubs[citers[0]], result->hubs[a]);
}

TEST(HitsTest, ContainmentCouplesAuthority) {
  // A cited paper's section inherits authority relative to an uncited
  // paper's section (footnote 1's containment refinement applied to HITS).
  graph::XmlGraph graph;
  uint32_t tag = graph.InternName("e");
  auto make_paper = [&](const std::string& uri) {
    uint32_t doc = graph.AddDocument(uri);
    graph::NodeId root = graph.AddElement(tag, graph::kInvalidNode, doc);
    graph.SetDocumentRoot(doc, root);
    graph::NodeId section = graph.AddElement(tag, root, doc);
    return std::make_pair(root, section);
  };
  auto [popular, popular_sec] = make_paper("popular");
  auto [obscure, obscure_sec] = make_paper("obscure");
  uint32_t doc_c = graph.AddDocument("citers");
  graph::NodeId c_root = graph.AddElement(tag, graph::kInvalidNode, doc_c);
  graph.SetDocumentRoot(doc_c, c_root);
  for (int i = 0; i < 5; ++i) {
    graph::NodeId citer = graph.AddElement(tag, c_root, doc_c);
    graph.AddHyperlink(citer, popular);
  }
  graph.FinalizeStructure();

  auto result = rank::ComputeHits(graph, rank::HitsOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->authorities[popular_sec],
            result->authorities[obscure_sec]);

  // With containment_weight = 0 (classic HITS), the sections tie at zero
  // authority: nothing links to them.
  rank::HitsOptions classic;
  classic.containment_weight = 0.0;
  auto classic_result = rank::ComputeHits(graph, classic);
  ASSERT_TRUE(classic_result.ok());
  EXPECT_NEAR(classic_result->authorities[popular_sec], 0.0, 1e-9);
  EXPECT_NEAR(classic_result->authorities[obscure_sec], 0.0, 1e-9);
}

TEST(HitsTest, RejectsBadOptions) {
  graph::XmlGraph graph;
  uint32_t tag = graph.InternName("e");
  uint32_t doc = graph.AddDocument("d");
  graph.SetDocumentRoot(doc, graph.AddElement(tag, graph::kInvalidNode, doc));
  graph.FinalizeStructure();
  rank::HitsOptions options;
  options.containment_weight = 1.5;
  EXPECT_FALSE(rank::ComputeHits(graph, options).ok());
}

// --- path-filtered queries ---

TEST(PathQueryTest, FiltersByAncestorTagChain) {
  std::vector<xml::Document> docs;
  auto doc = xml::ParseDocument(testutil::Figure1Xml(), "f");
  ASSERT_TRUE(doc.ok());
  docs.push_back(std::move(doc).value());
  EngineOptions options;
  options.indexes = {IndexKind::kDil};
  auto engine = XRankEngine::Build(std::move(docs), options);
  ASSERT_TRUE(engine.ok());

  // 'xql' occurs in several elements; restrict to //paper/title.
  auto all = (*engine)->Query("xql", 20, IndexKind::kDil);
  ASSERT_TRUE(all.ok());
  ASSERT_GT(all->results.size(), 1u);

  auto titles = (*engine)->QueryWithPath("xql", 20, IndexKind::kDil,
                                         {"paper", "title"});
  ASSERT_TRUE(titles.ok()) << titles.status();
  ASSERT_EQ(titles->results.size(), 1u);
  EXPECT_EQ(titles->results[0].element_tag, "title");
  // It really is a <paper>'s title: check the parent tag.
  auto parent =
      (*engine)->graph().FindByDewey(titles->results[0].id.Parent());
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ((*engine)->graph().name(*parent), "paper");
}

TEST(PathQueryTest, EmptyPathIsUnfiltered) {
  std::vector<xml::Document> docs;
  auto doc = xml::ParseDocument(testutil::Figure1Xml(), "f");
  ASSERT_TRUE(doc.ok());
  docs.push_back(std::move(doc).value());
  EngineOptions options;
  options.indexes = {IndexKind::kDil};
  auto engine = XRankEngine::Build(std::move(docs), options);
  ASSERT_TRUE(engine.ok());
  auto plain = (*engine)->Query("xql", 20, IndexKind::kDil);
  auto pathless = (*engine)->QueryWithPath("xql", 20, IndexKind::kDil, {});
  ASSERT_TRUE(plain.ok() && pathless.ok());
  EXPECT_EQ(plain->results.size(), pathless->results.size());
}

TEST(PathQueryTest, NonMatchingPathYieldsEmpty) {
  std::vector<xml::Document> docs;
  auto doc = xml::ParseDocument(testutil::Figure1Xml(), "f");
  ASSERT_TRUE(doc.ok());
  docs.push_back(std::move(doc).value());
  EngineOptions options;
  options.indexes = {IndexKind::kDil};
  auto engine = XRankEngine::Build(std::move(docs), options);
  ASSERT_TRUE(engine.ok());
  auto response = (*engine)->QueryWithPath("xql", 20, IndexKind::kDil,
                                           {"nosuchtag"});
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->results.empty());
}

}  // namespace
}  // namespace xrank
