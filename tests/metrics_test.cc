// Observability layer tests: the metrics registry primitives (counters,
// gauges, power-of-two latency histograms and their percentile math), the
// per-query trace, the engine's slow-query ring buffer, and the regression
// guarantee that the per-query / per-instance counters (QueryStats,
// ServingCounters) are reproduced exactly by registry snapshot deltas.

#include "common/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "query/trace.h"
#include "xml/parser.h"

namespace xrank {
namespace {

using core::EngineOptions;
using core::XRankEngine;
using index::IndexKind;
using metrics::Counter;
using metrics::Gauge;
using metrics::Histogram;
using metrics::Registry;
using query::QueryTrace;
using query::ScopedSpan;

constexpr const char* kCorpusXml = R"(
<workshop>
  <title> XML and IR workshop </title>
  <proceedings>
    <paper id="1">
      <title> XQL and Proximal Nodes </title>
      <body>
        <section> Searching structured text with the xql language </section>
        <section> xyleme supports xql fragments </section>
      </body>
    </paper>
    <paper id="2">
      <title> Querying XML in Xyleme </title>
      <body> ranked keyword search over xml documents </body>
    </paper>
  </proceedings>
</workshop>
)";

std::vector<xml::Document> Corpus() {
  auto doc = xml::ParseDocument(kCorpusXml, "corpus.xml");
  EXPECT_TRUE(doc.ok()) << doc.status();
  std::vector<xml::Document> docs;
  docs.push_back(std::move(doc).value());
  return docs;
}

TEST(MetricsTest, CounterBasics) {
  Counter* c = Registry::Instance().GetCounter("test.counter_basics");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
  // Same name -> same object; pointers are stable.
  EXPECT_EQ(Registry::Instance().GetCounter("test.counter_basics"), c);
  c->Reset();
  EXPECT_EQ(c->value(), 0u);
}

TEST(MetricsTest, GaugeBasics) {
  Gauge* g = Registry::Instance().GetGauge("test.gauge_basics");
  g->Set(7);
  EXPECT_EQ(g->value(), 7);
  g->Add(-10);
  EXPECT_EQ(g->value(), -3);
}

TEST(MetricsTest, HistogramObserveCountSum) {
  Histogram* h = Registry::Instance().GetHistogram("test.hist_basics");
  h->Observe(1);
  h->Observe(100);
  h->Observe(1000);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->sum(), 1101u);
  auto snapshot = h->TakeSnapshot();
  EXPECT_EQ(snapshot.count, 3u);
  EXPECT_EQ(snapshot.sum, 1101u);
  ASSERT_EQ(snapshot.bucket_counts.size(), Histogram::kNumBuckets);
  uint64_t total = 0;
  for (uint64_t b : snapshot.bucket_counts) total += b;
  EXPECT_EQ(total, 3u);
  EXPECT_GT(snapshot.p50, 0.0);
  EXPECT_GE(snapshot.p99, snapshot.p50);
}

// Percentile math probed at bucket edges through the exposed static so the
// expectations are exact (no live-histogram races, no snapshotting).
TEST(MetricsTest, PercentileAtBucketEdges) {
  // Empty -> 0.
  std::vector<uint64_t> counts(Histogram::kNumBuckets, 0);
  EXPECT_EQ(Histogram::PercentileFromCounts(counts, 50.0), 0.0);

  // All 100 observations in bucket 3, i.e. the value range (4, 8].
  counts[3] = 100;
  // p100 must land exactly on the bucket's upper bound...
  EXPECT_DOUBLE_EQ(Histogram::PercentileFromCounts(counts, 100.0), 8.0);
  // ...p50 interpolates to the middle of the bucket...
  EXPECT_DOUBLE_EQ(Histogram::PercentileFromCounts(counts, 50.0), 6.0);
  // ...and p->0 clamps to at least one observation's rank, never below the
  // lower bound.
  double p_low = Histogram::PercentileFromCounts(counts, 0.0);
  EXPECT_GE(p_low, 4.0);
  EXPECT_LE(p_low, 4.2);

  // Mass split across two buckets: bucket 0 ([0,1]) and bucket 4 ((8,16]).
  std::vector<uint64_t> split(Histogram::kNumBuckets, 0);
  split[0] = 50;
  split[4] = 50;
  // p50 exhausts bucket 0 exactly: rank 50 is its last observation.
  EXPECT_DOUBLE_EQ(Histogram::PercentileFromCounts(split, 50.0), 1.0);
  // Anything above p50 interpolates inside (8, 16].
  double p75 = Histogram::PercentileFromCounts(split, 75.0);
  EXPECT_GT(p75, 8.0);
  EXPECT_LE(p75, 16.0);

  // Overflow bucket clamps to the largest finite bound.
  std::vector<uint64_t> overflow(Histogram::kNumBuckets, 0);
  overflow[Histogram::kNumFiniteBuckets] = 10;
  EXPECT_DOUBLE_EQ(
      Histogram::PercentileFromCounts(overflow, 99.0),
      static_cast<double>(
          Histogram::BucketBound(Histogram::kNumFiniteBuckets - 1)));
}

// Hot-path concurrency: all mutators are relaxed atomics; this must be
// clean under TSan and lose no increments.
TEST(MetricsTest, ConcurrentIncrementStress) {
  Counter* c = Registry::Instance().GetCounter("test.stress_counter");
  Gauge* g = Registry::Instance().GetGauge("test.stress_gauge");
  Histogram* h = Registry::Instance().GetHistogram("test.stress_hist");
  c->Reset();
  g->Reset();
  h->Reset();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        g->Add(1);
        h->Observe(static_cast<uint64_t>((t * kPerThread + i) % 5000));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(g->value(), static_cast<int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
  auto snapshot = h->TakeSnapshot();
  uint64_t total = 0;
  for (uint64_t b : snapshot.bucket_counts) total += b;
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, RegistrySnapshotFindsMetricsByName) {
  Registry::Instance().GetCounter("test.snap_counter")->Increment(5);
  Registry::Instance().GetHistogram("test.snap_hist")->Observe(10);
  auto snapshot = Registry::Instance().Snapshot();
  EXPECT_EQ(snapshot.counter("test.snap_counter"), 5u);
  EXPECT_EQ(snapshot.counter("test.absent"), 0u);
  const auto* hist = snapshot.histogram("test.snap_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 1u);
  EXPECT_EQ(snapshot.histogram("test.absent"), nullptr);
  // Render paths stay in sync with the snapshot contents.
  std::string table = metrics::RenderTable(snapshot);
  EXPECT_NE(table.find("test.snap_counter"), std::string::npos);
  std::string json = metrics::RenderJson(snapshot);
  EXPECT_NE(json.find("\"test.snap_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
}

TEST(MetricsTest, TraceSpanNesting) {
  QueryTrace trace;
  size_t outer = trace.BeginSpan("merge");
  size_t inner = trace.BeginSpan("dil_fallback");
  trace.EndSpan(inner);
  trace.EndSpan(outer);
  {
    ScopedSpan scoped(&trace, "rank");
  }
  ScopedSpan noop(nullptr, "ignored");  // null-safe: must not crash

  ASSERT_EQ(trace.spans().size(), 3u);
  EXPECT_EQ(trace.spans()[0].name, "merge");
  EXPECT_EQ(trace.spans()[0].depth, 0);
  EXPECT_FALSE(trace.spans()[0].open);
  EXPECT_EQ(trace.spans()[1].name, "dil_fallback");
  EXPECT_EQ(trace.spans()[1].depth, 1);  // nested inside "merge"
  EXPECT_EQ(trace.spans()[2].name, "rank");
  EXPECT_EQ(trace.spans()[2].depth, 0);
  EXPECT_GE(trace.spans()[1].start_us, trace.spans()[0].start_us);

  QueryTrace::TermStats term;
  term.term = "xql";
  term.postings_read = 3;
  trace.AddTermStats(term);
  std::string table = trace.FormatTable();
  EXPECT_NE(table.find("merge"), std::string::npos);
  EXPECT_NE(table.find("xql"), std::string::npos);
  std::string json = trace.FormatJson();
  EXPECT_NE(json.find("\"dil_fallback\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
}

// Engine-level tracing: one traced query populates the span tree and the
// per-term counters for every index kind.
TEST(MetricsTest, EngineQueryPopulatesTrace) {
  EngineOptions options;
  options.indexes = {IndexKind::kDil, IndexKind::kRdil, IndexKind::kHdil,
                     IndexKind::kNaiveId, IndexKind::kNaiveRank};
  auto engine = XRankEngine::Build(Corpus(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  for (IndexKind kind :
       {IndexKind::kDil, IndexKind::kRdil, IndexKind::kHdil,
        IndexKind::kNaiveId, IndexKind::kNaiveRank}) {
    QueryTrace trace;
    query::QueryOptions query_options;
    query_options.trace = &trace;
    auto response = (*engine)->Query("xql xyleme", 5, kind, query_options);
    ASSERT_TRUE(response.ok()) << response.status();

    std::vector<std::string> names;
    for (const auto& span : trace.spans()) names.push_back(span.name);
    for (const char* expected :
         {"parse", "lexicon", "cursor_open", "merge", "rank", "decorate"}) {
      EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
          << "missing span '" << expected << "' for kind "
          << index::IndexKindName(kind);
    }
    // HDIL may carry two rows per term: the TA phase and the DIL fallback
    // each append their own counters.
    ASSERT_GE(trace.terms().size(), 2u)
        << "per-term stats for kind " << index::IndexKindName(kind);
    uint64_t postings = 0;
    for (const char* keyword : {"xql", "xyleme"}) {
      bool found = false;
      for (const auto& term : trace.terms()) {
        if (term.term == keyword) found = true;
      }
      EXPECT_TRUE(found) << "no stats for '" << keyword << "' on "
                         << index::IndexKindName(kind);
    }
    for (const auto& term : trace.terms()) postings += term.postings_read;
    EXPECT_GT(postings, 0u) << index::IndexKindName(kind);
    EXPECT_EQ(trace.index_kind(), index::IndexKindName(kind));
    EXPECT_EQ(trace.query_text(), "xql xyleme");
  }
}

TEST(MetricsTest, SlowQueryRingBufferEviction) {
  EngineOptions options;
  options.indexes = {IndexKind::kHdil};
  options.slow_query_ms = -1;  // log every query (test hook)
  options.slow_query_log_entries = 4;
  options.result_cache_entries = 0;  // every query must execute
  auto engine = XRankEngine::Build(Corpus(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  const std::vector<std::string> queries = {"xql",    "xml",    "xyleme",
                                            "search", "ranked", "keyword"};
  for (const std::string& q : queries) {
    auto response = (*engine)->Query(q, 5, IndexKind::kHdil);
    ASSERT_TRUE(response.ok()) << response.status();
  }

  EXPECT_EQ((*engine)->slow_query_count(), queries.size());
  auto log = (*engine)->slow_queries();
  ASSERT_EQ(log.size(), 4u);  // capacity bounded the log
  // Oldest first, and the two oldest queries were evicted.
  EXPECT_EQ(log[0].query, "xyleme");
  EXPECT_EQ(log[1].query, "search");
  EXPECT_EQ(log[2].query, "ranked");
  EXPECT_EQ(log[3].query, "keyword");
  for (const auto& entry : log) {
    EXPECT_EQ(entry.kind, IndexKind::kHdil);
    EXPECT_GE(entry.wall_ms, 0.0);
    // The engine traced internally: the entry carries a span breakdown.
    EXPECT_FALSE(entry.trace.spans().empty());
  }
}

// The regression guarantee of the observability layer: the legacy per-query
// QueryStats and the registry agree — a snapshot delta around one query
// reproduces its stats exactly.
TEST(MetricsTest, QueryStatsMatchesRegistryDelta) {
  EngineOptions options;
  options.indexes = {IndexKind::kHdil};
  options.result_cache_entries = 0;
  auto engine = XRankEngine::Build(Corpus(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  auto before = Registry::Instance().Snapshot();
  auto response = (*engine)->Query("xql xyleme", 5, IndexKind::kHdil);
  ASSERT_TRUE(response.ok()) << response.status();
  auto after = Registry::Instance().Snapshot();

  const query::QueryStats& stats = response->stats;
  EXPECT_EQ(after.counter("query.count") - before.counter("query.count"), 1u);
  EXPECT_EQ(after.counter("query.postings_scanned") -
                before.counter("query.postings_scanned"),
            stats.postings_scanned);
  EXPECT_EQ(after.counter("query.pages_skipped") -
                before.counter("query.pages_skipped"),
            stats.pages_skipped);
  EXPECT_EQ(after.counter("query.btree_probes") -
                before.counter("query.btree_probes"),
            stats.btree_probes);
  EXPECT_EQ(after.counter("query.hash_probes") -
                before.counter("query.hash_probes"),
            stats.hash_probes);
  EXPECT_EQ(after.counter("query.rounds") - before.counter("query.rounds"),
            stats.rounds);
  EXPECT_EQ(after.counter("query.sequential_reads") -
                before.counter("query.sequential_reads"),
            stats.sequential_reads);
  EXPECT_EQ(after.counter("query.random_reads") -
                before.counter("query.random_reads"),
            stats.random_reads);
  EXPECT_EQ(after.counter("query.blocks_pruned") -
                before.counter("query.blocks_pruned"),
            stats.blocks_pruned);
  EXPECT_EQ(after.counter("query.block_cache_hits") -
                before.counter("query.block_cache_hits"),
            stats.block_cache_hits);
  const auto* latency = after.histogram("query.latency_us");
  ASSERT_NE(latency, nullptr);
  const auto* latency_before = before.histogram("query.latency_us");
  EXPECT_EQ(latency->count - (latency_before ? latency_before->count : 0),
            1u);
}

// Same guarantee for the serving-path counters: per-engine ServingCounters
// and the registry's pool/result-cache counters move in lockstep.
TEST(MetricsTest, ServingCountersMatchRegistryDelta) {
  EngineOptions options;
  options.indexes = {IndexKind::kHdil};
  options.result_cache_entries = 64;
  options.cold_cache_per_query = false;  // let the pool accumulate hits
  auto engine = XRankEngine::Build(Corpus(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  auto counters_before = (*engine)->serving_counters(IndexKind::kHdil);
  auto registry_before = Registry::Instance().Snapshot();

  for (int i = 0; i < 3; ++i) {
    auto response = (*engine)->Query("xql xyleme", 5, IndexKind::kHdil);
    ASSERT_TRUE(response.ok()) << response.status();
  }

  auto counters_after = (*engine)->serving_counters(IndexKind::kHdil);
  auto registry_after = Registry::Instance().Snapshot();

  EXPECT_EQ(counters_after.pool_hits - counters_before.pool_hits,
            registry_after.counter("pool.hits") -
                registry_before.counter("pool.hits"));
  EXPECT_EQ(counters_after.pool_misses - counters_before.pool_misses,
            registry_after.counter("pool.misses") -
                registry_before.counter("pool.misses"));
  EXPECT_EQ(counters_after.result_cache_lookups -
                counters_before.result_cache_lookups,
            registry_after.counter("result_cache.lookups") -
                registry_before.counter("result_cache.lookups"));
  EXPECT_EQ(counters_after.result_cache_hits -
                counters_before.result_cache_hits,
            registry_after.counter("result_cache.hits") -
                registry_before.counter("result_cache.hits"));
  // The repeats were served from the result cache and counted as hits on
  // both sides.
  EXPECT_GE(counters_after.result_cache_hits -
                counters_before.result_cache_hits,
            2u);
}

// Block-cache counters surface through both the registry and the engine's
// ServingCounters, and warm re-execution produces hits.
TEST(MetricsTest, BlockCacheCountersMatchRegistryDelta) {
  EngineOptions options;
  options.indexes = {IndexKind::kDil};
  options.result_cache_entries = 0;  // force real re-execution
  options.cold_cache_per_query = false;
  options.block_cache_bytes = 4u << 20;
  auto engine = XRankEngine::Build(Corpus(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  auto registry_before = Registry::Instance().Snapshot();
  auto first = (*engine)->Query("xql xyleme", 5, IndexKind::kDil);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = (*engine)->Query("xql xyleme", 5, IndexKind::kDil);
  ASSERT_TRUE(second.ok()) << second.status();
  auto registry_after = Registry::Instance().Snapshot();

  // The second execution re-reads the same list pages from the cache.
  EXPECT_GT(second->stats.block_cache_hits, 0u);
  EXPECT_EQ(registry_after.counter("query.block_cache_hits") -
                registry_before.counter("query.block_cache_hits"),
            first->stats.block_cache_hits + second->stats.block_cache_hits);
  EXPECT_GT(registry_after.counter("block_cache.insertions") -
                registry_before.counter("block_cache.insertions"),
            0u);
  EXPECT_GT(registry_after.counter("block_cache.hits") -
                registry_before.counter("block_cache.hits"),
            0u);

  auto counters = (*engine)->serving_counters(IndexKind::kDil);
  EXPECT_GT(counters.block_cache_lookups, 0u);
  EXPECT_GT(counters.block_cache_hits, 0u);
}

}  // namespace
}  // namespace xrank
