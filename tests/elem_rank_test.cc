// Tests for the ElemRank computation (paper Section 3): convergence,
// probability conservation, the semantics each formula refinement adds, and
// the design goal that 2-level collections reduce to PageRank.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "graph/builder.h"
#include "rank/elem_rank.h"
#include "rank/pagerank.h"
#include "xml/parser.h"

namespace xrank::rank {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::XmlGraph;

XmlGraph BuildGraph(std::vector<std::pair<const char*, const char*>> docs,
                    bool attributes_as_subelements = false) {
  graph::BuilderOptions options;
  options.attributes_as_subelements = attributes_as_subelements;
  GraphBuilder builder(options);
  for (const auto& [text, uri] : docs) {
    auto doc = xml::ParseDocument(text, uri);
    EXPECT_TRUE(doc.ok()) << doc.status();
    EXPECT_TRUE(builder.AddDocument(*doc).ok());
  }
  auto graph = std::move(builder).Finalize();
  EXPECT_TRUE(graph.ok()) << graph.status();
  return std::move(graph).value();
}

double SumElementRanks(const XmlGraph& graph, const std::vector<double>& r) {
  double sum = 0.0;
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    if (graph.is_element(u)) sum += r[u];
  }
  return sum;
}

TEST(ElemRankTest, ConvergesAndConserves) {
  XmlGraph graph = BuildGraph(
      {{"<a><b>x</b><c><d>y</d><e>z</e></c></a>", "u1"},
       {"<a><b>q</b></a>", "u2"}});
  for (Formula formula :
       {Formula::kPageRankAdaptation, Formula::kBidirectional,
        Formula::kDiscriminated, Formula::kFinal}) {
    ElemRankOptions options;
    options.formula = formula;
    auto result = ComputeElemRank(graph, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->converged) << static_cast<int>(formula);
    EXPECT_GT(result->iterations, 1);
    double sum = SumElementRanks(graph, result->ranks);
    // The final formula conserves probability exactly; the literal earlier
    // refinements leak at document roots (no parent), as in the paper's
    // formulas, so only check them loosely.
    if (formula == Formula::kFinal ||
        formula == Formula::kPageRankAdaptation) {
      EXPECT_NEAR(sum, 1.0, 1e-6) << static_cast<int>(formula);
    } else {
      EXPECT_GT(sum, 0.5);
      EXPECT_LT(sum, 1.01);
    }
    // All ranks positive, value nodes zero.
    for (NodeId u = 0; u < graph.node_count(); ++u) {
      if (graph.is_element(u)) {
        EXPECT_GT(result->ranks[u], 0.0);
      } else {
        EXPECT_EQ(result->ranks[u], 0.0);
      }
    }
  }
}

TEST(ElemRankTest, RejectsBadParameters) {
  XmlGraph graph = BuildGraph({{"<a/>", "u"}});
  ElemRankOptions options;
  options.d1 = 0.5;
  options.d2 = 0.4;
  options.d3 = 0.2;  // sums to 1.1
  EXPECT_FALSE(ComputeElemRank(graph, options).ok());
  options = ElemRankOptions();
  options.formula = Formula::kPageRankAdaptation;
  options.d = 1.5;
  EXPECT_FALSE(ComputeElemRank(graph, options).ok());
}

// Forward propagation: sections of a highly-referenced paper inherit rank
// (paper Section 3.1's motivation for bidirectional transfer).
TEST(ElemRankTest, ForwardContainmentPropagation) {
  // Two structurally identical papers; the first is cited by many others.
  std::vector<std::pair<const char*, const char*>> docs = {
      {"<paper><sec>alpha</sec></paper>", "popular.xml"},
      {"<paper><sec>beta</sec></paper>", "obscure.xml"},
  };
  std::vector<std::string> citers;
  for (int i = 0; i < 8; ++i) {
    citers.push_back("<paper><cite xlink=\"popular.xml\">c</cite></paper>");
  }
  for (int i = 0; i < 8; ++i) docs.push_back({citers[i].c_str(), ""});
  // Unique URIs for citers.
  std::vector<std::string> uris;
  for (int i = 0; i < 8; ++i) uris.push_back("citer" + std::to_string(i));
  for (int i = 0; i < 8; ++i) docs[2 + i].second = uris[i].c_str();

  XmlGraph graph = BuildGraph(docs);
  auto result = ComputeElemRank(graph, ElemRankOptions{});
  ASSERT_TRUE(result.ok());

  NodeId popular_root = graph.documents()[0].root;
  NodeId obscure_root = graph.documents()[1].root;
  NodeId popular_sec = graph.node(popular_root).element_children[0];
  NodeId obscure_sec = graph.node(obscure_root).element_children[0];
  EXPECT_GT(result->ranks[popular_root], result->ranks[obscure_root]);
  // The section of the popular paper outranks the obscure paper's section.
  EXPECT_GT(result->ranks[popular_sec], result->ranks[obscure_sec]);
}

// Reverse propagation: a workshop whose papers are all heavily cited
// outranks a structurally identical workshop with only one cited paper —
// the aggregate semantics of the final formula's d3 term (Section 3.1:
// "a workshop that contains many important papers should have a higher
// ElemRank than a workshop that contains only one important paper").
TEST(ElemRankTest, ReverseContainmentAggregates) {
  // Hand-built graph via the mutation API: workshop A holds four papers,
  // each cited 10 times; workshop B holds one equally-cited paper. Equal
  // per-paper importance, so A's root must aggregate more.
  XmlGraph graph;
  uint32_t tag = graph.InternName("e");
  auto make_workshop = [&](const std::string& uri, int papers,
                           std::vector<NodeId>* out_children) {
    uint32_t doc = graph.AddDocument(uri);
    NodeId root = graph.AddElement(tag, graph::kInvalidNode, doc);
    graph.SetDocumentRoot(doc, root);
    for (int i = 0; i < papers; ++i) {
      out_children->push_back(graph.AddElement(tag, root, doc));
    }
    return root;
  };
  std::vector<NodeId> papers_a, papers_b;
  NodeId root_a = make_workshop("a", 4, &papers_a);
  NodeId root_b = make_workshop("b", 1, &papers_b);

  // Citer documents: every paper receives exactly 10 citations.
  int citer_index = 0;
  auto cite = [&](NodeId target) {
    uint32_t doc =
        graph.AddDocument("citer" + std::to_string(citer_index++));
    NodeId root = graph.AddElement(tag, graph::kInvalidNode, doc);
    graph.SetDocumentRoot(doc, root);
    NodeId cite_element = graph.AddElement(tag, root, doc);
    graph.AddHyperlink(cite_element, target);
  };
  for (NodeId paper : papers_a) {
    for (int c = 0; c < 10; ++c) cite(paper);
  }
  for (int c = 0; c < 10; ++c) cite(papers_b[0]);
  graph.FinalizeStructure();

  auto result = ComputeElemRank(graph, ElemRankOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->ranks[root_a], result->ranks[root_b]);
  // And B's single paper is individually stronger than any one of A's
  // (it receives the same citations but a larger forward share).
  EXPECT_GT(result->ranks[papers_b[0]], result->ranks[papers_a[0]]);
}

// The discrimination refinement (Section 3.1): "the larger the number of
// references in a paper, the less important each section of the paper is
// likely to be, which is not very intuitive". With the final formula a
// section's share of its paper is independent of how many hyperlinks the
// paper carries; with the undiscriminated bidirectional formula it decays.
TEST(ElemRankTest, HyperlinksDoNotDiluteSections) {
  // Measures the marginal effect of adding references: a paper with one
  // section and `nlinks` outgoing hyperlinks. Under the final formula the
  // section's share of its paper is independent of nlinks; under the
  // undiscriminated bidirectional formula it shrinks as references grow.
  auto section_share = [](Formula formula, int nlinks) {
    XmlGraph graph;
    uint32_t tag = graph.InternName("e");
    uint32_t doc_b = graph.AddDocument("b");
    NodeId root_b = graph.AddElement(tag, graph::kInvalidNode, doc_b);
    graph.SetDocumentRoot(doc_b, root_b);
    NodeId section = graph.AddElement(tag, root_b, doc_b);
    uint32_t doc_c = graph.AddDocument("c");
    NodeId root_c = graph.AddElement(tag, graph::kInvalidNode, doc_c);
    graph.SetDocumentRoot(doc_c, root_c);
    // Plenty of filler elements so the uniform jump/dangling redistribution
    // is negligible next to the structural flow under test, and enough
    // in-links that the paper's rank is well above jump level (dilution
    // only matters for important papers).
    for (int i = 0; i < 300; ++i) {
      NodeId filler = graph.AddElement(tag, root_c, doc_c);
      if (i < 60) graph.AddHyperlink(filler, root_b);
    }
    for (int i = 0; i < nlinks; ++i) graph.AddHyperlink(root_b, root_c);
    graph.FinalizeStructure();

    ElemRankOptions options;
    options.formula = formula;
    auto result = ComputeElemRank(graph, options);
    EXPECT_TRUE(result.ok()) << result.status();
    return result->ranks[section] / result->ranks[root_b];
  };

  // Bidirectional: 50 references crowd the section down to a fraction of
  // its 2-reference share.
  double u_few = section_share(Formula::kBidirectional, 2);
  double u_many = section_share(Formula::kBidirectional, 50);
  EXPECT_LT(u_many, 0.7 * u_few);

  // Final formula: the share is reference-count invariant.
  double f_few = section_share(Formula::kFinal, 2);
  double f_many = section_share(Formula::kFinal, 50);
  EXPECT_NEAR(f_many, f_few, 0.05 * f_few);
}

// Design goal (paper Section 1): on a 2-level collection (document root +
// text), ElemRank ordering matches PageRank over the hyperlink graph.
TEST(ElemRankTest, TwoLevelCollectionMatchesPageRankOrdering) {
  // A small web: 0 <- {1,2,3}, 1 <- {2}, chain 3 -> 1.
  std::vector<std::pair<const char*, const char*>> docs = {
      {"<page>zero</page>", "p0"},
      {"<page><a xlink=\"p0\">l</a></page>", "p1"},
      {"<page><a xlink=\"p0\">l</a><a xlink=\"p1\">l</a></page>", "p2"},
      {"<page><a xlink=\"p0\">l</a><a xlink=\"p1\">l</a></page>", "p3"},
  };
  XmlGraph graph = BuildGraph(docs);

  // Hyperlink-only adjacency between documents. Note XLink targets document
  // roots; anchors live one level below, so project to the root level.
  std::vector<std::vector<uint32_t>> adjacency(4);
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    if (!graph.is_element(u)) continue;
    for (NodeId v : graph.hyperlinks(u)) {
      adjacency[graph.node(u).document].push_back(graph.node(v).document);
    }
  }
  PageRankOptions pr_options;
  auto pagerank = ComputePageRank(adjacency, pr_options);
  ASSERT_TRUE(pagerank.ok());

  ElemRankOptions er_options;
  auto elemrank = ComputeElemRank(graph, er_options);
  ASSERT_TRUE(elemrank.ok());

  // Compare document-level orderings.
  auto doc_rank = [&](size_t d) {
    return elemrank->ranks[graph.documents()[d].root];
  };
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      if (pagerank->ranks[i] > pagerank->ranks[j] * 1.05) {
        EXPECT_GT(doc_rank(i), doc_rank(j))
            << "PageRank order violated for docs " << i << "," << j;
      }
    }
  }
}

TEST(PageRankTest, UniformOnSymmetricGraph) {
  // A 3-cycle: all nodes equal.
  std::vector<std::vector<uint32_t>> adjacency = {{1}, {2}, {0}};
  auto result = ComputePageRank(adjacency, PageRankOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_NEAR(result->ranks[0], 1.0 / 3, 1e-4);
  EXPECT_NEAR(result->ranks[1], 1.0 / 3, 1e-4);
  EXPECT_NEAR(result->ranks[2], 1.0 / 3, 1e-4);
}

TEST(PageRankTest, SinkReceivesMore) {
  // 0 and 1 both point at 2.
  std::vector<std::vector<uint32_t>> adjacency = {{2}, {2}, {}};
  auto result = ComputePageRank(adjacency, PageRankOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->ranks[2], result->ranks[0]);
  EXPECT_GT(result->ranks[2], result->ranks[1]);
  double sum = std::accumulate(result->ranks.begin(), result->ranks.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(PageRankTest, RejectsBadInput) {
  EXPECT_FALSE(ComputePageRank({}, PageRankOptions{}).ok());
  std::vector<std::vector<uint32_t>> bad_edge = {{5}};
  EXPECT_FALSE(ComputePageRank(bad_edge, PageRankOptions{}).ok());
}

// Parameter sweep (paper Section 3.2: varying d1,d2,d3 "does not have a
// significant effect on algorithm convergence time").
struct DParams {
  double d1, d2, d3;
};

class ElemRankParamTest : public ::testing::TestWithParam<DParams> {};

TEST_P(ElemRankParamTest, ConvergesAcrossParameterSettings) {
  XmlGraph graph = BuildGraph({
      {"<a><b><c>x</c></b><d>y</d></a>", "u1"},
      {"<a><b>z</b></a>", "u2"},
  });
  ElemRankOptions options;
  options.d1 = GetParam().d1;
  options.d2 = GetParam().d2;
  options.d3 = GetParam().d3;
  auto result = ComputeElemRank(graph, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  EXPECT_LT(result->iterations, 200);
  EXPECT_NEAR(SumElementRanks(graph, result->ranks), 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ElemRankParamTest,
    ::testing::Values(DParams{0.35, 0.25, 0.25}, DParams{0.1, 0.1, 0.1},
                      DParams{0.6, 0.2, 0.1}, DParams{0.1, 0.6, 0.2},
                      DParams{0.1, 0.2, 0.6}, DParams{0.3, 0.3, 0.3}));

}  // namespace
}  // namespace xrank::rank
