// Unit tests for the common substrate: Status/Result, varints, PRNG,
// string utilities.

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/random.h"
#include "common/result.h"
#include "common/safe_strerror.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/varint.h"

namespace xrank {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::ParseError("bad tag");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_EQ(status.message(), "bad tag");
  EXPECT_EQ(status.ToString(), "ParseError: bad tag");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kNotFound, StatusCode::kIOError, StatusCode::kCorruption,
        StatusCode::kOutOfRange, StatusCode::kUnimplemented,
        StatusCode::kInternal}) {
    EXPECT_FALSE(StatusCodeName(code).empty());
    EXPECT_NE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

Result<int> Doubled(Result<int> input) {
  XRANK_ASSIGN_OR_RETURN(int v, std::move(input));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(21).value(), 42);
  Result<int> error = Doubled(Status::IOError("disk"));
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kIOError);
}

TEST(VarintTest, RoundTripsBoundaries) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            16383,
                            16384,
                            UINT32_MAX,
                            (1ULL << 56) - 1,
                            std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), static_cast<size_t>(VarintLength64(v)));
    size_t offset = 0;
    auto decoded = GetVarint64(buf, &offset);
    ASSERT_TRUE(decoded.ok()) << v;
    EXPECT_EQ(*decoded, v);
    EXPECT_EQ(offset, buf.size());
  }
}

TEST(VarintTest, SequentialDecode) {
  std::string buf;
  for (uint32_t v = 0; v < 1000; v += 7) PutVarint32(&buf, v);
  size_t offset = 0;
  for (uint32_t v = 0; v < 1000; v += 7) {
    auto decoded = GetVarint32(buf, &offset);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, v);
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(VarintTest, TruncatedInputIsCorruption) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  buf.resize(buf.size() - 1);
  size_t offset = 0;
  auto decoded = GetVarint64(buf, &offset);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(VarintTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, static_cast<uint64_t>(UINT32_MAX) + 1);
  size_t offset = 0;
  auto decoded = GetVarint32(buf, &offset);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, ForksAreDecorrelated) {
  Random parent(5);
  Random fork1 = parent.Fork(1);
  Random fork2 = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (fork1.Next64() == fork2.Next64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(StringUtilTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("XQL and IR"), "xql and ir");
  EXPECT_EQ(AsciiToLower(""), "");
  EXPECT_EQ(AsciiToLower("123-ABC"), "123-abc");
}

TEST(StringUtilTest, SplitStringDropsEmpty) {
  auto pieces = SplitString("a..b.c", ".");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
  EXPECT_TRUE(SplitString("", ".").empty());
  EXPECT_TRUE(SplitString("...", ".").empty());
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \n"), "x y");
  EXPECT_EQ(StripWhitespace("\t\r\n "), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StringUtilTest, BytesToHuman) {
  EXPECT_EQ(BytesToHuman(97), "97 B");
  EXPECT_EQ(BytesToHuman(2048), "2.00 KB");
  EXPECT_EQ(BytesToHuman(3 * 1024 * 1024), "3.00 MB");
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 1.5), "1.50");
}

TEST(BackoffTest, JitteredDelaysStayWithinPolicyBounds) {
  BackoffPolicy policy;
  policy.jitter_seed = 42;
  BackoffDelays delays(policy);
  for (int i = 0; i < 200; ++i) {
    auto d = delays.Next();
    EXPECT_GE(d, policy.initial_delay) << i;
    EXPECT_LE(d, policy.max_delay) << i;
  }
}

TEST(BackoffTest, JitterEnvelopeIsDecorrelated) {
  // Each delay is drawn from [initial, min(max, 3 * previous)] — verify the
  // per-step envelope, not just the global clamp.
  BackoffPolicy policy;
  policy.jitter_seed = 7;
  policy.max_delay = std::chrono::microseconds{1000000};  // roomy ceiling
  BackoffDelays delays(policy);
  auto previous = policy.initial_delay;
  for (int i = 0; i < 200; ++i) {
    auto d = delays.Next();
    EXPECT_GE(d.count(), policy.initial_delay.count()) << i;
    EXPECT_LE(d.count(), std::max<int64_t>(3 * previous.count(),
                                           policy.initial_delay.count()))
        << i;
    previous = d;
  }
}

TEST(BackoffTest, FixedSeedIsReproducibleAndSeedsDiverge) {
  BackoffPolicy policy;
  policy.jitter_seed = 1234;
  BackoffDelays a(policy);
  BackoffDelays b(policy);
  bool same_seed_equal = true;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() != b.Next()) same_seed_equal = false;
  }
  EXPECT_TRUE(same_seed_equal);

  BackoffPolicy other = policy;
  other.jitter_seed = 1235;
  BackoffDelays c(policy);
  BackoffDelays d(other);
  bool diverged = false;
  for (int i = 0; i < 50; ++i) {
    if (c.Next() != d.Next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(BackoffTest, WithoutJitterScheduleIsExactExponential) {
  BackoffPolicy policy;
  policy.decorrelated_jitter = false;
  BackoffDelays delays(policy);
  EXPECT_EQ(delays.Next().count(), 100);   // initial
  EXPECT_EQ(delays.Next().count(), 400);   // * 4
  EXPECT_EQ(delays.Next().count(), 1600);  // * 4
  EXPECT_EQ(delays.Next().count(), 5000);  // clamped to max
  EXPECT_EQ(delays.Next().count(), 5000);  // stays clamped
}

TEST(SafeStrErrorTest, KnownAndUnknownErrnos) {
  EXPECT_FALSE(SafeStrError(ENOENT).empty());
  // An out-of-range errno still yields a printable description.
  std::string unknown = SafeStrError(99999);
  EXPECT_NE(unknown.find("99999"), std::string::npos);
}

TEST(SafeStrErrorTest, ConcurrentCallsAreIndependent) {
  // The thread-safety property: concurrent calls from many threads must not
  // corrupt each other's buffers (strerror's shared static would).
  std::vector<std::thread> threads;
  std::atomic<bool> mismatch{false};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      int err = (t % 2 == 0) ? ENOENT : EACCES;
      std::string expected = SafeStrError(err);
      for (int i = 0; i < 1000; ++i) {
        if (SafeStrError(err) != expected) {
          mismatch.store(true);
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(mismatch.load());
}

}  // namespace
}  // namespace xrank
