// Tests for index construction and persistence: build stats (the Table 1
// inputs), on-disk round trips through OpenIndex, and the structural
// relationships the paper reports (naive lists bigger than DIL, HDIL's
// index far smaller than RDIL's).

#include "index/index_builder.h"

#include <gtest/gtest.h>

#include "datagen/dblp_gen.h"
#include "datagen/xmark_gen.h"
#include "index/dil_index.h"
#include "index/hdil_index.h"
#include "index/naive_index.h"
#include "index/rdil_index.h"
#include "query/dil_query.h"
#include "test_util.h"
#include "xml/serializer.h"

namespace xrank::index {
namespace {

using testutil::BuildIndexedCorpus;

std::vector<std::pair<std::string, std::string>> SerializeCorpus(
    const datagen::Corpus& corpus) {
  std::vector<std::pair<std::string, std::string>> docs;
  for (const xml::Document& doc : corpus.documents) {
    docs.emplace_back(xml::Serialize(doc), doc.uri);
  }
  return docs;
}

TEST(ExtractionTest, DirectContainmentOnly) {
  auto corpus = BuildIndexedCorpus(
      {{"<r><p>outer <s>inner</s></p></r>", "doc"}});
  // 'inner' is directly contained only in <s>.
  const auto& inner = corpus->extracted.dewey_postings.at("inner");
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(inner[0].id, dewey::DeweyId({0, 0, 0}));
  // 'outer' directly in <p>.
  const auto& outer = corpus->extracted.dewey_postings.at("outer");
  ASSERT_EQ(outer.size(), 1u);
  EXPECT_EQ(outer[0].id, dewey::DeweyId({0, 0}));
}

TEST(ExtractionTest, NaivePostingsReplicateAncestors) {
  auto corpus = BuildIndexedCorpus(
      {{"<r><p>outer <s>inner</s></p></r>", "doc"}});
  // 'inner' appears for <s>, <p>, <r> in the naive postings.
  const auto& inner = corpus->extracted.naive_postings.at("inner");
  EXPECT_EQ(inner.size(), 3u);
  // Naive lists are strictly larger overall.
  size_t dewey_total = 0, naive_total = 0;
  for (const auto& [term, postings] : corpus->extracted.dewey_postings) {
    dewey_total += postings.size();
  }
  for (const auto& [term, postings] : corpus->extracted.naive_postings) {
    naive_total += postings.size();
  }
  EXPECT_GT(naive_total, dewey_total);
}

TEST(ExtractionTest, PositionsAreDocumentGlobalAndOrdered) {
  auto corpus = BuildIndexedCorpus(
      {{"<r><a>one two</a><b>three one</b></r>", "doc"}});
  const auto& one = corpus->extracted.dewey_postings.at("one");
  ASSERT_EQ(one.size(), 2u);
  // <a> holds positions {0}; <b> holds {3}.
  EXPECT_EQ(one[0].positions, std::vector<uint32_t>({0}));
  EXPECT_EQ(one[1].positions, std::vector<uint32_t>({3}));
}

TEST(ExtractionTest, ElemRanksAttached) {
  auto corpus = BuildIndexedCorpus({{testutil::Figure1Xml(), "f"}});
  for (const auto& [term, postings] : corpus->extracted.dewey_postings) {
    for (const Posting& posting : postings) {
      EXPECT_GT(posting.elem_rank, 0.0f) << term;
      auto node = corpus->graph.FindByDewey(posting.id);
      ASSERT_TRUE(node.ok());
      EXPECT_FLOAT_EQ(posting.elem_rank,
                      static_cast<float>(corpus->ranks.ranks[*node]));
    }
  }
}

TEST(IndexStatsTest, Table1ShapeHolds) {
  // Long inverted lists are where the structural size differences emerge
  // (per-term fixed costs dominate on tiny corpora): modest paper count but
  // a small vocabulary so average list length is high.
  datagen::DblpOptions gen;
  gen.num_papers = 1200;
  gen.vocabulary_size = 3000;
  datagen::Corpus corpus_data = datagen::GenerateDblp(gen);
  auto corpus = BuildIndexedCorpus(SerializeCorpus(corpus_data));

  const auto& naive_id = corpus->indexes.at(IndexKind::kNaiveId).built.stats;
  const auto& naive_rank =
      corpus->indexes.at(IndexKind::kNaiveRank).built.stats;
  const auto& dil = corpus->indexes.at(IndexKind::kDil).built.stats;
  const auto& rdil = corpus->indexes.at(IndexKind::kRdil).built.stats;
  const auto& hdil = corpus->indexes.at(IndexKind::kHdil).built.stats;

  // Naive lists replicate ancestors: bigger than DIL lists.
  EXPECT_GT(naive_id.list_bytes(), dil.list_bytes());
  EXPECT_EQ(naive_id.list_bytes(), naive_rank.list_bytes());
  // Naive-ID and DIL carry no auxiliary index.
  EXPECT_EQ(naive_id.index_bytes(), 0u);
  EXPECT_EQ(dil.index_bytes(), 0u);
  // Naive-Rank and RDIL pay for their indexes.
  EXPECT_GT(naive_rank.index_bytes(), 0u);
  EXPECT_GT(rdil.index_bytes(), 0u);
  // HDIL's full list is slightly larger than DIL's (rank prefix), but its
  // stored index is far smaller than RDIL's dense tree (Table 1: 7 MB vs
  // 156 MB on DBLP).
  EXPECT_GE(hdil.list_bytes(), dil.list_bytes());
  EXPECT_GT(hdil.index_bytes(), 0u);
  EXPECT_LT(hdil.index_bytes() * 4, rdil.index_bytes());
}

TEST(IndexPersistenceTest, OpenIndexRoundTripsOnDisk) {
  std::string path = std::string(::testing::TempDir()) + "/dil_persist.xrank";
  auto corpus = BuildIndexedCorpus({{testutil::Figure1Xml(), "f"}});
  {
    auto file = storage::PageFile::CreateOnDisk(path);
    ASSERT_TRUE(file.ok());
    auto built =
        BuildDilIndex(corpus->extracted.dewey_postings, std::move(*file));
    ASSERT_TRUE(built.ok()) << built.status();
  }
  auto reopened_file = storage::PageFile::OpenOnDisk(path);
  ASSERT_TRUE(reopened_file.ok());
  auto reopened = OpenIndex(std::move(*reopened_file));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->kind, IndexKind::kDil);
  EXPECT_EQ(reopened->lexicon.term_count(),
            corpus->extracted.dewey_postings.size());

  // Queries over the reopened index behave identically.
  storage::CostModel model;
  storage::BufferPool pool(reopened->file.get(), 128, &model);
  query::DilQueryProcessor processor(&pool, &reopened->lexicon,
                                     query::ScoringOptions{});
  auto response = processor.Execute({"xql", "language"}, 10);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->results.size(), 2u);
}

TEST(IndexPersistenceTest, AllKindsRoundTrip) {
  auto corpus = BuildIndexedCorpus({{testutil::Figure1Xml(), "f"}});
  struct Case {
    IndexKind kind;
    const TermPostingsMap* postings;
  };
  for (IndexKind kind :
       {IndexKind::kNaiveId, IndexKind::kNaiveRank, IndexKind::kDil,
        IndexKind::kRdil, IndexKind::kHdil}) {
    std::string path = std::string(::testing::TempDir()) + "/persist_" +
                       std::to_string(static_cast<int>(kind)) + ".xrank";
    {
      auto file = storage::PageFile::CreateOnDisk(path);
      ASSERT_TRUE(file.ok());
      Result<BuiltIndex> built = Status::Internal("unset");
      switch (kind) {
        case IndexKind::kDil:
          built = BuildDilIndex(corpus->extracted.dewey_postings,
                                std::move(*file));
          break;
        case IndexKind::kRdil:
          built = BuildRdilIndex(corpus->extracted.dewey_postings,
                                 std::move(*file));
          break;
        case IndexKind::kHdil:
          built = BuildHdilIndex(corpus->extracted.dewey_postings,
                                 std::move(*file), HdilOptions{});
          break;
        case IndexKind::kNaiveId:
          built = BuildNaiveIdIndex(corpus->extracted.naive_postings,
                                    std::move(*file));
          break;
        case IndexKind::kNaiveRank:
          built = BuildNaiveRankIndex(corpus->extracted.naive_postings,
                                      std::move(*file));
          break;
      }
      ASSERT_TRUE(built.ok()) << built.status();
    }
    auto file = storage::PageFile::OpenOnDisk(path);
    ASSERT_TRUE(file.ok());
    auto reopened = OpenIndex(std::move(*file));
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    EXPECT_EQ(reopened->kind, kind);
    EXPECT_GT(reopened->lexicon.term_count(), 0u);
    EXPECT_GT(reopened->stats.entry_count, 0u);
  }
}

TEST(IndexPersistenceTest, CorruptHeaderRejected) {
  auto file = storage::PageFile::CreateInMemory();
  ASSERT_TRUE(file->Allocate().ok());
  storage::Page garbage{};
  garbage.WriteU32(0, 0x12345678);
  ASSERT_TRUE(file->Write(0, garbage).ok());
  EXPECT_FALSE(OpenIndex(std::move(file)).ok());

  auto empty = storage::PageFile::CreateInMemory();
  EXPECT_FALSE(OpenIndex(std::move(empty)).ok());
}

TEST(IndexKindTest, NamesAreStable) {
  EXPECT_EQ(IndexKindName(IndexKind::kNaiveId), "Naive-ID");
  EXPECT_EQ(IndexKindName(IndexKind::kNaiveRank), "Naive-Rank");
  EXPECT_EQ(IndexKindName(IndexKind::kDil), "DIL");
  EXPECT_EQ(IndexKindName(IndexKind::kRdil), "RDIL");
  EXPECT_EQ(IndexKindName(IndexKind::kHdil), "HDIL");
}

TEST(HdilBuildTest, RankPrefixBounded) {
  datagen::XMarkOptions gen;
  gen.num_items = 60;
  gen.num_people = 30;
  gen.num_open_auctions = 40;
  gen.num_closed_auctions = 20;
  datagen::Corpus corpus_data = datagen::GenerateXMark(gen);
  HdilOptions hdil_options;
  hdil_options.rank_fraction = 0.05;
  hdil_options.min_rank_entries = 10;
  auto corpus =
      BuildIndexedCorpus(SerializeCorpus(corpus_data), hdil_options);
  const Lexicon* lexicon = corpus->lexicon(IndexKind::kHdil);
  for (const auto& [term, info] : lexicon->terms()) {
    size_t expected = std::max<size_t>(
        hdil_options.min_rank_entries,
        static_cast<size_t>(hdil_options.rank_fraction *
                            static_cast<double>(info.list.entry_count)));
    expected = std::min<size_t>(expected, info.list.entry_count);
    EXPECT_EQ(info.rank_list.entry_count, expected) << term;
  }
}

}  // namespace
}  // namespace xrank::index
