// Tests for HDIL: the probe primitives over the sparse B+-tree + full list,
// result equivalence with DIL, and the adaptive RDIL->DIL switch
// (paper Section 4.4).

#include "query/hdil_query.h"

#include <gtest/gtest.h>

#include "datagen/dblp_gen.h"
#include "query/dil_query.h"
#include "test_util.h"
#include "xml/serializer.h"

namespace xrank::query {
namespace {

using index::IndexKind;
using testutil::BuildIndexedCorpus;

std::vector<std::pair<std::string, std::string>> SerializeCorpus(
    const datagen::Corpus& corpus) {
  std::vector<std::pair<std::string, std::string>> docs;
  for (const xml::Document& doc : corpus.documents) {
    docs.emplace_back(xml::Serialize(doc), doc.uri);
  }
  return docs;
}

TEST(HdilProbeTest, LongestCommonPrefixMatchesBruteForce) {
  datagen::DblpOptions gen;
  gen.num_papers = 120;
  gen.seed = 3;
  datagen::Corpus corpus_data = datagen::GenerateDblp(gen);
  auto corpus = BuildIndexedCorpus(SerializeCorpus(corpus_data));
  const index::Lexicon* lexicon = corpus->lexicon(IndexKind::kHdil);
  storage::BufferPool* pool = corpus->pool(IndexKind::kHdil);

  // Pick a common term and probe with IDs from another term's postings.
  const index::TermInfo* target = lexicon->Find("sel0");
  ASSERT_NE(target, nullptr);
  const auto& probes = corpus->extracted.dewey_postings.at("sel1");
  const auto& targets = corpus->extracted.dewey_postings.at("sel0");
  for (const index::Posting& probe : probes) {
    auto lcp = HdilLongestCommonPrefix(pool, lexicon, *target, probe.id);
    ASSERT_TRUE(lcp.ok()) << lcp.status();
    size_t expected = 0;
    for (const index::Posting& posting : targets) {
      expected = std::max(expected, probe.id.CommonPrefixLength(posting.id));
    }
    EXPECT_EQ(*lcp, expected) << probe.id.ToString();
  }
}

TEST(HdilProbeTest, ScanPrefixMatchesBruteForce) {
  datagen::DblpOptions gen;
  gen.num_papers = 100;
  gen.seed = 4;
  datagen::Corpus corpus_data = datagen::GenerateDblp(gen);
  auto corpus = BuildIndexedCorpus(SerializeCorpus(corpus_data));
  const index::Lexicon* lexicon = corpus->lexicon(IndexKind::kHdil);
  storage::BufferPool* pool = corpus->pool(IndexKind::kHdil);

  const index::TermInfo* info = lexicon->Find("sel0");
  ASSERT_NE(info, nullptr);
  const auto& postings = corpus->extracted.dewey_postings.at("sel0");
  // Prefixes: document roots and the deep posting IDs themselves.
  std::vector<dewey::DeweyId> prefixes;
  for (size_t i = 0; i < postings.size(); i += 7) {
    prefixes.push_back(postings[i].id);
    prefixes.push_back(postings[i].id.Prefix(1));
  }
  prefixes.push_back(dewey::DeweyId({999}));  // matches nothing
  for (const dewey::DeweyId& prefix : prefixes) {
    std::vector<dewey::DeweyId> scanned;
    ASSERT_TRUE(HdilScanPrefix(pool, lexicon, *info, prefix,
                               [&](const index::Posting& posting) {
                                 scanned.push_back(posting.id);
                                 return true;
                               })
                    .ok());
    std::vector<dewey::DeweyId> expected;
    for (const index::Posting& posting : postings) {
      if (prefix.IsPrefixOf(posting.id)) expected.push_back(posting.id);
    }
    EXPECT_EQ(scanned, expected) << prefix.ToString();
  }
}

TEST(HdilQueryTest, MatchesDilResultsEitherMode) {
  datagen::DblpOptions gen;
  gen.num_papers = 200;
  gen.seed = 5;
  datagen::Corpus corpus_data = datagen::GenerateDblp(gen);
  auto corpus = BuildIndexedCorpus(SerializeCorpus(corpus_data));

  DilQueryProcessor dil(corpus->pool(IndexKind::kDil),
                        corpus->lexicon(IndexKind::kDil), ScoringOptions{});
  HdilQueryProcessor hdil(corpus->pool(IndexKind::kHdil),
                          corpus->lexicon(IndexKind::kHdil),
                          ScoringOptions{});
  const auto& quad = corpus_data.planted.high_correlation[0];
  const auto& low = corpus_data.planted.low_correlation[0];
  std::vector<std::vector<std::string>> queries = {
      {quad[0], quad[1]},          // high correlation: RDIL mode finishes
      {low[0], low[1]},            // low correlation: switches to DIL
      {quad[0], quad[1], quad[2]},
      {"sel1", "sel2"},
  };
  for (const auto& keywords : queries) {
    auto dil_response = dil.Execute(keywords, 10);
    auto hdil_response = hdil.Execute(keywords, 10);
    ASSERT_TRUE(dil_response.ok() && hdil_response.ok());
    ASSERT_EQ(dil_response->results.size(), hdil_response->results.size())
        << keywords[0];
    for (size_t i = 0; i < dil_response->results.size(); ++i) {
      EXPECT_EQ(dil_response->results[i].id, hdil_response->results[i].id)
          << keywords[0] << " i=" << i;
      EXPECT_NEAR(dil_response->results[i].rank,
                  hdil_response->results[i].rank, 1e-9);
    }
  }
}

TEST(HdilQueryTest, SwitchesToDilWhenRankPrefixExhausts) {
  // Keywords that never co-occur: the rank prefixes run dry without
  // producing m results, forcing the DIL fallback (Section 4.4.2).
  std::vector<std::pair<std::string, std::string>> docs;
  for (int i = 0; i < 40; ++i) {
    docs.emplace_back(i % 2 == 0 ? "<a><b>eventerm pad</b></a>"
                                 : "<a><b>oddterm pad</b></a>",
                      "d" + std::to_string(i));
  }
  index::HdilOptions hdil_options;
  hdil_options.min_rank_entries = 4;  // tiny prefix to force exhaustion
  hdil_options.rank_fraction = 0.1;
  auto corpus = BuildIndexedCorpus(docs, hdil_options);
  HdilQueryProcessor hdil(corpus->pool(IndexKind::kHdil),
                          corpus->lexicon(IndexKind::kHdil),
                          ScoringOptions{});
  auto response = hdil.Execute({"eventerm", "oddterm"}, 5);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->stats.switched_to_dil);
  EXPECT_TRUE(response->results.empty());
}

TEST(HdilQueryTest, StaysInRdilModeOnCorrelatedKeywords) {
  datagen::DblpOptions gen;
  gen.num_papers = 300;
  gen.high_corr_frequency = 0.3;
  datagen::Corpus corpus_data = datagen::GenerateDblp(gen);
  auto corpus = BuildIndexedCorpus(SerializeCorpus(corpus_data));
  HdilQueryProcessor hdil(corpus->pool(IndexKind::kHdil),
                          corpus->lexicon(IndexKind::kHdil),
                          ScoringOptions{});
  const auto& quad = corpus_data.planted.high_correlation[0];
  auto response = hdil.Execute({quad[0], quad[1]}, 3);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->stats.switched_to_dil);
  EXPECT_TRUE(response->stats.threshold_terminated);
  EXPECT_GE(response->results.size(), 3u);
}

}  // namespace
}  // namespace xrank::query
