// Posting-codec unit and property tests: bit-packing round trips (dispatched
// kernel cross-checked against the portable scalar), rank quantization
// (floor semantics, documented error bound, clamping), registry lookups and
// format validation, per-codec page-encoder round trips, and corruption
// torture — a decoder fed damaged pages, headers or manifests must return a
// Status, never crash or read out of bounds.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/bitpack.h"
#include "common/crc32.h"
#include "common/random.h"
#include "index/codec.h"
#include "index/dil_index.h"
#include "index/index_builder.h"
#include "index/manifest.h"
#include "storage/page.h"
#include "storage/page_file.h"

namespace xrank::index {
namespace {

// ------------------------------------------------------------- bit packing --

TEST(BitpackTest, RoundTripsEveryWidthAndAwkwardCount) {
  xrank::Random rng(71);
  for (unsigned width = 0; width <= 32; ++width) {
    const uint32_t mask = width == 32 ? 0xFFFFFFFFu
                          : width == 0 ? 0u
                                       : ((uint32_t{1} << width) - 1);
    for (size_t n : {size_t{1}, size_t{2}, size_t{7}, size_t{8}, size_t{9},
                     size_t{127}, size_t{128}, size_t{129}, size_t{1000}}) {
      std::vector<uint32_t> values(n);
      for (uint32_t& v : values) {
        v = static_cast<uint32_t>(rng.Next64()) & mask;
      }
      std::vector<uint8_t> packed(bitpack::PackedBytes(n, width), 0xAB);
      bitpack::PackBits(values.data(), n, width, packed.data());

      std::vector<uint32_t> unpacked(n, 0xDEADBEEF);
      ASSERT_TRUE(bitpack::UnpackBits(packed.data(),
                                      packed.data() + packed.size(), n, width,
                                      unpacked.data()))
          << "width=" << width << " n=" << n;
      EXPECT_EQ(unpacked, values) << "width=" << width << " n=" << n;

      // The dispatched kernel (possibly SIMD) must agree with the portable
      // scalar reference bit for bit.
      std::vector<uint32_t> portable(n, 0);
      ASSERT_TRUE(bitpack::UnpackBitsPortable(packed.data(),
                                              packed.data() + packed.size(),
                                              n, width, portable.data()));
      EXPECT_EQ(portable, values) << "width=" << width << " n=" << n;
    }
  }
}

TEST(BitpackTest, RejectsTruncatedInput) {
  std::vector<uint32_t> values(100, 0x5A5A5A5Au & 0x1FFFFu);
  const unsigned width = 17;
  std::vector<uint8_t> packed(bitpack::PackedBytes(values.size(), width));
  bitpack::PackBits(values.data(), values.size(), width, packed.data());
  std::vector<uint32_t> out(values.size());
  // Any shorter buffer must be refused up front — no partial decode relies
  // on bytes past in_end.
  for (size_t len = 0; len < packed.size(); ++len) {
    EXPECT_FALSE(bitpack::UnpackBits(packed.data(), packed.data() + len,
                                     values.size(), width, out.data()))
        << len;
    EXPECT_FALSE(bitpack::UnpackBitsPortable(packed.data(),
                                             packed.data() + len,
                                             values.size(), width, out.data()))
        << len;
  }
  EXPECT_FALSE(bitpack::UnpackBits(packed.data(),
                                   packed.data() + packed.size(),
                                   values.size(), 33, out.data()));
}

TEST(BitpackTest, BitWidthMatchesDefinition) {
  EXPECT_EQ(bitpack::BitWidth(0), 0u);
  EXPECT_EQ(bitpack::BitWidth(1), 1u);
  EXPECT_EQ(bitpack::BitWidth(255), 8u);
  EXPECT_EQ(bitpack::BitWidth(256), 9u);
  EXPECT_EQ(bitpack::BitWidth(0xFFFFFFFFu), 32u);
}

// ------------------------------------------------------------ group varint --

// Reference encoder matching the vgb stream layout (index/codec.cc's
// PackVgbStream): groups of 4 values, control byte of four 2-bit
// (byte length - 1) codes, then 1-4 LE bytes per value; tail groups carry
// only the values present.
std::vector<uint8_t> EncodeGroupVarint(const std::vector<uint32_t>& values) {
  std::vector<uint8_t> out;
  for (size_t i = 0; i < values.size(); i += 4) {
    const size_t group = std::min<size_t>(4, values.size() - i);
    uint8_t control = 0;
    size_t lens[4] = {0, 0, 0, 0};
    for (size_t j = 0; j < group; ++j) {
      uint32_t v = values[i + j];
      size_t len = 1;
      while (v > 0xFF) {
        v >>= 8;
        ++len;
      }
      lens[j] = len;
      control |= static_cast<uint8_t>((len - 1) << (2 * j));
    }
    out.push_back(control);
    for (size_t j = 0; j < group; ++j) {
      uint32_t v = values[i + j];
      for (size_t b = 0; b < lens[j]; ++b) {
        out.push_back(static_cast<uint8_t>(v >> (8 * b)));
      }
    }
  }
  return out;
}

TEST(BitpackTest, GroupVarintRoundTripsMixedLengthsAndTailGroups) {
  xrank::Random rng(417);
  for (size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{4}, size_t{5},
                   size_t{7}, size_t{8}, size_t{63}, size_t{64}, size_t{65},
                   size_t{1000}}) {
    std::vector<uint32_t> values(n);
    for (uint32_t& v : values) {
      // Bias toward a mix of 1/2/3/4-byte values so every control code and
      // shuffle-table entry gets exercised.
      const unsigned bytes = 1 + static_cast<unsigned>(rng.Next64() % 4);
      v = static_cast<uint32_t>(rng.Next64()) &
          (bytes == 4 ? 0xFFFFFFFFu : ((uint32_t{1} << (8 * bytes)) - 1));
    }
    std::vector<uint8_t> encoded = EncodeGroupVarint(values);
    // Slack past the encoded extent: the SIMD kernels may read (not use) up
    // to 16 bytes beyond the last encoded byte as long as it is < in_end.
    std::vector<uint8_t> buf = encoded;
    buf.resize(encoded.size() + 16, 0xCD);

    std::vector<uint32_t> out(n, 0xDEADBEEF);
    size_t consumed = 0;
    ASSERT_TRUE(bitpack::UnpackGroupVarint(buf.data(), buf.data() + buf.size(),
                                           n, out.data(), &consumed))
        << "n=" << n;
    EXPECT_EQ(out, values) << "n=" << n;
    EXPECT_EQ(consumed, encoded.size()) << "n=" << n;

    // The dispatched kernel (possibly SIMD) must agree with the portable
    // scalar reference, including the consumed-byte count.
    std::vector<uint32_t> portable(n, 0);
    size_t portable_consumed = 0;
    ASSERT_TRUE(bitpack::UnpackGroupVarintPortable(
        buf.data(), buf.data() + buf.size(), n, portable.data(),
        &portable_consumed))
        << "n=" << n;
    EXPECT_EQ(portable, values) << "n=" << n;
    EXPECT_EQ(portable_consumed, encoded.size()) << "n=" << n;
  }
}

TEST(BitpackTest, GroupVarintDecodesExtremesAndNullConsumed) {
  const std::vector<uint32_t> values = {0,          1,          0xFFu,
                                        0x100u,     0xFFFFu,    0x10000u,
                                        0xFFFFFFu,  0x1000000u, 0xFFFFFFFFu};
  std::vector<uint8_t> encoded = EncodeGroupVarint(values);
  std::vector<uint8_t> buf = encoded;
  buf.resize(encoded.size() + 16, 0);
  std::vector<uint32_t> out(values.size());
  // consumed may be null.
  ASSERT_TRUE(bitpack::UnpackGroupVarint(buf.data(), buf.data() + buf.size(),
                                         values.size(), out.data(), nullptr));
  EXPECT_EQ(out, values);
  // n == 0 decodes to nothing and consumes nothing, even from an empty
  // buffer.
  size_t consumed = 42;
  EXPECT_TRUE(bitpack::UnpackGroupVarint(buf.data(), buf.data(), 0, out.data(),
                                         &consumed));
  EXPECT_EQ(consumed, 0u);
}

TEST(BitpackTest, GroupVarintRejectsTruncatedInput) {
  xrank::Random rng(98);
  std::vector<uint32_t> values(37);
  for (uint32_t& v : values) {
    v = static_cast<uint32_t>(rng.Next64());
  }
  std::vector<uint8_t> encoded = EncodeGroupVarint(values);
  std::vector<uint32_t> out(values.size());
  size_t consumed = 0;
  // Any in_end at or before the last encoded byte must be refused: the
  // stream would extend past in_end. No slack bytes here, so this also
  // proves the kernels never require readable bytes past the stream when
  // in_end is tight.
  for (size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_FALSE(bitpack::UnpackGroupVarint(encoded.data(),
                                            encoded.data() + len,
                                            values.size(), out.data(),
                                            &consumed))
        << len;
    EXPECT_FALSE(bitpack::UnpackGroupVarintPortable(
        encoded.data(), encoded.data() + len, values.size(), out.data(),
        &consumed))
        << len;
  }
  // Exactly the encoded extent succeeds (scalar tail path — no slack).
  ASSERT_TRUE(bitpack::UnpackGroupVarint(encoded.data(),
                                         encoded.data() + encoded.size(),
                                         values.size(), out.data(), &consumed));
  EXPECT_EQ(out, values);
  EXPECT_EQ(consumed, encoded.size());
}

TEST(BitpackTest, GroupVarintKernelNameIsKnown) {
  const std::string name = bitpack::GroupVarintKernelName();
  EXPECT_TRUE(name == "scalar" || name == "ssse3" || name == "neon") << name;
}

// ------------------------------------------------------------ quantization --

TEST(RankQuantizationTest, FloorSemanticsAndErrorBound) {
  xrank::Random rng(12);
  for (RankEncoding encoding :
       {RankEncoding::kQuantU8, RankEncoding::kQuantU16}) {
    for (float scale : {1.0f, 1000.0f, 0.001f}) {
      const float bound = RankQuantizationBound(encoding, scale);
      EXPECT_GT(bound, 0.0f);
      for (int trial = 0; trial < 2000; ++trial) {
        float rank = scale * static_cast<float>(rng.NextDouble());
        uint32_t q = QuantizeRank(rank, scale, encoding);
        EXPECT_LE(q, RankQuantMax(encoding));
        float decoded = DequantizeRank(q, scale, encoding);
        // Floor quantization: never decode above the true rank, and never
        // lose more than one quantum.
        EXPECT_LE(decoded, rank);
        EXPECT_LE(rank - decoded, bound) << "scale=" << scale;
      }
      // Range ends are exact.
      EXPECT_EQ(DequantizeRank(RankQuantMax(encoding), scale, encoding),
                scale);
      EXPECT_EQ(QuantizeRank(scale, scale, encoding),
                RankQuantMax(encoding));
      EXPECT_EQ(QuantizeRank(0.0f, scale, encoding), 0u);
    }
  }
}

TEST(RankQuantizationTest, QuantizeIsMonotone) {
  const float scale = 7.5f;
  for (RankEncoding encoding :
       {RankEncoding::kQuantU8, RankEncoding::kQuantU16}) {
    uint32_t previous = 0;
    for (int i = 0; i <= 1000; ++i) {
      float rank = scale * static_cast<float>(i) / 1000.0f;
      uint32_t q = QuantizeRank(rank, scale, encoding);
      EXPECT_GE(q, previous) << rank;
      previous = q;
    }
  }
}

TEST(RankQuantizationTest, ClampsHostileInputs) {
  const float scale = 10.0f;
  for (RankEncoding encoding :
       {RankEncoding::kQuantU8, RankEncoding::kQuantU16}) {
    const uint32_t qmax = RankQuantMax(encoding);
    EXPECT_EQ(QuantizeRank(-1.0f, scale, encoding), 0u);
    EXPECT_EQ(QuantizeRank(std::numeric_limits<float>::quiet_NaN(), scale,
                           encoding),
              0u);
    // Non-finite ranks (either sign) are indistinguishable from damage and
    // clamp low, so a corrupted rank can never inflate a pruning bound.
    EXPECT_EQ(QuantizeRank(std::numeric_limits<float>::infinity(), scale,
                           encoding),
              0u);
    EXPECT_EQ(QuantizeRank(scale * 2.0f, scale, encoding), qmax);
  }
  // Float32 has nothing to quantize.
  EXPECT_EQ(QuantizeRank(3.0f, scale, RankEncoding::kFloat32), 0u);
  EXPECT_EQ(RankQuantizationBound(RankEncoding::kFloat32, scale), 0.0f);
}

TEST(RankQuantizationTest, ComputeRankScaleIgnoresNonFinite) {
  std::vector<Posting> postings(3);
  postings[0].elem_rank = 2.5f;
  postings[1].elem_rank = std::numeric_limits<float>::infinity();
  postings[2].elem_rank = 7.0f;
  EXPECT_EQ(ComputeRankScale(postings), 7.0f);
  // No positive finite rank: fall back to 1.0 so dequantization never
  // divides by zero.
  EXPECT_EQ(ComputeRankScale({}), 1.0f);
  std::vector<Posting> zeros(2);
  EXPECT_EQ(ComputeRankScale(zeros), 1.0f);
}

// ---------------------------------------------------------------- registry --

TEST(CodecRegistryTest, KnownCodecsResolveUnknownAreRefused) {
  ASSERT_GE(RegisteredPostingCodecs().size(), 3u);
  struct {
    uint32_t id;
    const char* name;
  } expected[] = {{kPostingCodecVarint, "varint"},
                  {kPostingCodecBp128, "bp128"},
                  {kPostingCodecVarintGb, "vgb"}};
  for (const auto& e : expected) {
    const PostingCodec* codec = FindPostingCodec(e.id);
    ASSERT_NE(codec, nullptr) << e.name;
    EXPECT_EQ(codec->id(), e.id);
    EXPECT_EQ(codec->name(), e.name);
    EXPECT_EQ(FindPostingCodecByName(e.name), codec);
    auto resolved = ResolvePostingCodec({e.id, RankEncoding::kFloat32});
    ASSERT_TRUE(resolved.ok()) << resolved.status();
    EXPECT_EQ(*resolved, codec);
  }
  EXPECT_EQ(FindPostingCodec(99), nullptr);
  EXPECT_EQ(FindPostingCodecByName("zstd"), nullptr);
  EXPECT_FALSE(ResolvePostingCodec({99, RankEncoding::kFloat32}).ok());
  EXPECT_FALSE(
      ResolvePostingCodec({kPostingCodecBp128, static_cast<RankEncoding>(7)})
          .ok());
}

// ------------------------------------------------------ encoder round trip --

std::vector<Posting> MakeBlockPostings(size_t count, uint64_t seed) {
  xrank::Random rng(seed);
  std::vector<Posting> postings;
  uint32_t doc = 0, leaf = 0;
  for (size_t i = 0; i < count; ++i) {
    leaf += 1 + static_cast<uint32_t>(rng.Uniform(4));
    if (leaf > 60) {
      leaf = 0;
      ++doc;
    }
    Posting posting;
    posting.id = dewey::DeweyId({doc, 1, leaf / 8, leaf % 8});
    posting.elem_rank = static_cast<float>(rng.NextDouble());
    uint32_t pos = static_cast<uint32_t>(rng.Uniform(50));
    size_t npos = 1 + rng.Uniform(3);
    for (size_t p = 0; p < npos; ++p) {
      pos += 1 + static_cast<uint32_t>(rng.Uniform(9));
      posting.positions.push_back(pos);
    }
    postings.push_back(std::move(posting));
  }
  return postings;
}

class CodecPageTest
    : public ::testing::TestWithParam<std::pair<uint32_t, RankEncoding>> {};

TEST_P(CodecPageTest, EncoderFlushDecodeRoundTrips) {
  auto [codec_id, ranks] = GetParam();
  const PostingCodec* codec = FindPostingCodec(codec_id);
  ASSERT_NE(codec, nullptr);
  auto postings = MakeBlockPostings(400, 21);
  PostingFormat format = MakeWriterFormat(codec, {codec_id, ranks}, postings,
                                          /*delta_encode_ids=*/true);

  auto encoder = codec->NewEncoder(format);
  std::vector<storage::Page> pages;
  std::vector<std::vector<Posting>> expected_by_page(1);
  for (const Posting& posting : postings) {
    auto added = encoder->Add(posting);
    ASSERT_TRUE(added.ok()) << added.status();
    if (!*added) {
      storage::Page page;
      auto used = encoder->Flush(&page);
      ASSERT_TRUE(used.ok()) << used.status();
      EXPECT_GT(*used, 0u);
      EXPECT_LE(*used, storage::kPageSize);
      pages.push_back(page);
      expected_by_page.emplace_back();
      added = encoder->Add(posting);
      ASSERT_TRUE(added.ok() && *added) << "retry on empty page must fit";
    }
    expected_by_page.back().push_back(posting);
  }
  if (encoder->count() > 0) {
    storage::Page page;
    ASSERT_TRUE(encoder->Flush(&page).ok());
    pages.push_back(page);
  }
  ASSERT_EQ(pages.size(), expected_by_page.size());

  std::vector<Posting> block;
  for (size_t p = 0; p < pages.size(); ++p) {
    ASSERT_TRUE(codec->DecodePage(pages[p], format, &block).ok());
    ASSERT_EQ(block.size(), expected_by_page[p].size()) << p;
    for (size_t i = 0; i < block.size(); ++i) {
      EXPECT_EQ(block[i].id, expected_by_page[p][i].id);
      EXPECT_EQ(block[i].positions, expected_by_page[p][i].positions);
      EXPECT_EQ(block[i].elem_rank,
                format.DecodedRank(expected_by_page[p][i].elem_rank));
    }
  }
}

// Damaged pages: flip bytes and truncate (zero the tail) — DecodePage must
// return OK or Corruption, never crash, hang, or produce an unbounded
// allocation. Decoding into a dirty recycled buffer must be just as safe.
TEST_P(CodecPageTest, DecodeSurvivesBitFlipsAndTruncation) {
  auto [codec_id, ranks] = GetParam();
  const PostingCodec* codec = FindPostingCodec(codec_id);
  ASSERT_NE(codec, nullptr);
  auto postings = MakeBlockPostings(300, 22);
  PostingFormat format = MakeWriterFormat(codec, {codec_id, ranks}, postings,
                                          /*delta_encode_ids=*/true);

  auto encoder = codec->NewEncoder(format);
  for (const Posting& posting : postings) {
    auto added = encoder->Add(posting);
    ASSERT_TRUE(added.ok());
    if (!*added) break;  // one full page is plenty
  }
  storage::Page original;
  ASSERT_TRUE(encoder->Flush(&original).ok());

  xrank::Random rng(23);
  std::vector<Posting> block;  // deliberately reused across decodes
  for (int trial = 0; trial < 500; ++trial) {
    storage::Page damaged = original;
    // Bias damage toward the header/stream descriptors at the front, where
    // counts and offsets live.
    size_t victim = rng.Bernoulli(0.5) ? rng.Uniform(64)
                                       : rng.Uniform(storage::kPageSize);
    damaged.data[victim] = static_cast<char>(rng.Next64());
    Status status = codec->DecodePage(damaged, format, &block);
    (void)status;  // ok() either way
  }
  for (size_t keep = 0; keep < 96; ++keep) {
    storage::Page truncated = original;
    std::memset(truncated.data.data() + keep, 0, storage::kPageSize - keep);
    Status status = codec->DecodePage(truncated, format, &block);
    (void)status;
  }
  // The undamaged page must still decode after all that buffer reuse.
  ASSERT_TRUE(codec->DecodePage(original, format, &block).ok());
  EXPECT_GT(block.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Formats, CodecPageTest,
    ::testing::Values(
        std::make_pair(kPostingCodecVarint, RankEncoding::kFloat32),
        std::make_pair(kPostingCodecBp128, RankEncoding::kFloat32),
        std::make_pair(kPostingCodecBp128, RankEncoding::kQuantU8),
        std::make_pair(kPostingCodecBp128, RankEncoding::kQuantU16),
        std::make_pair(kPostingCodecVarintGb, RankEncoding::kFloat32),
        std::make_pair(kPostingCodecVarintGb, RankEncoding::kQuantU8)),
    [](const ::testing::TestParamInfo<std::pair<uint32_t, RankEncoding>>&
           info) {
      return std::string(FindPostingCodec(info.param.first)->name()) + "_" +
             std::string(RankEncodingName(info.param.second));
    });

// ------------------------------------------- format validation at open time --

TEST(CodecValidationTest, OpenIndexRefusesUnregisteredCodecId) {
  TermPostingsMap postings;
  postings["alpha"] = MakeBlockPostings(50, 31);
  auto built = BuildDilIndex(postings, storage::PageFile::CreateInMemory());
  ASSERT_TRUE(built.ok()) << built.status();

  // Sanity: the unpatched file opens.
  {
    auto copy = storage::PageFile::CreateInMemory();
    storage::Page page;
    for (storage::PageId p = 0; p < built->file->page_count(); ++p) {
      ASSERT_TRUE(built->file->Read(p, &page).ok());
      ASSERT_TRUE(copy->Allocate().ok());
      ASSERT_TRUE(copy->Write(p, page).ok());
    }
    EXPECT_TRUE(OpenIndex(std::move(copy)).ok());
  }
  // Patch the header's codec id to an unregistered value: Open must refuse
  // with a clean Status instead of misdecoding pages.
  for (uint32_t bad_field : {0u, 1u}) {
    auto copy = storage::PageFile::CreateInMemory();
    storage::Page page;
    for (storage::PageId p = 0; p < built->file->page_count(); ++p) {
      ASSERT_TRUE(built->file->Read(p, &page).ok());
      if (p == 0) {
        // Offsets 64/68: codec id and rank encoding (see index_builder.cc).
        page.WriteU32(bad_field == 0 ? 64 : 68, 99);
      }
      ASSERT_TRUE(copy->Allocate().ok());
      ASSERT_TRUE(copy->Write(p, page).ok());
    }
    auto reopened = OpenIndex(std::move(copy));
    ASSERT_FALSE(reopened.ok()) << "bad_field=" << bad_field;
  }
}

TEST(CodecValidationTest, OpenIndexRefusesFutureLexiconFormatVersion) {
  // A lexicon format version this binary does not know means the blob may
  // carry fields we cannot parse; Open must refuse with a clean Status
  // instead of misaligning the decode.
  TermPostingsMap postings;
  postings["alpha"] = MakeBlockPostings(50, 31);
  auto built = BuildDilIndex(postings, storage::PageFile::CreateInMemory());
  ASSERT_TRUE(built.ok()) << built.status();

  auto copy = storage::PageFile::CreateInMemory();
  storage::Page page;
  for (storage::PageId p = 0; p < built->file->page_count(); ++p) {
    ASSERT_TRUE(built->file->Read(p, &page).ok());
    if (p == 0) {
      // Offset 76: lexicon format version (see index_builder.cc).
      page.WriteU32(76, kLexiconFormatVersion + 1);
    }
    ASSERT_TRUE(copy->Allocate().ok());
    ASSERT_TRUE(copy->Write(p, page).ok());
  }
  auto reopened = OpenIndex(std::move(copy));
  ASSERT_FALSE(reopened.ok());
  EXPECT_NE(reopened.status().message().find("lexicon format version"),
            std::string::npos)
      << reopened.status();
}

TEST(CodecValidationTest, ManifestRefusesUnknownCodecId) {
  Manifest manifest;
  ManifestEntry entry;
  entry.file = "dil.xrank";
  entry.kind = IndexKind::kDil;
  entry.page_count = 3;
  entry.crc = 12345;
  entry.format = PostingFormatSpec{kPostingCodecBp128, RankEncoding::kQuantU8};
  manifest.entries.push_back(entry);

  // Valid round trip first.
  auto parsed = ParseManifest(SerializeManifest(manifest));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->entries.size(), 1u);
  EXPECT_EQ(parsed->entries[0].format, entry.format);

  // Unknown codec id / rank encoding: serialization succeeds (it is just
  // text) but parsing must refuse — a mixed-version directory fails at open.
  manifest.entries[0].format.codec_id = 99;
  auto bad_codec = ParseManifest(SerializeManifest(manifest));
  EXPECT_FALSE(bad_codec.ok());
  manifest.entries[0].format = PostingFormatSpec{kPostingCodecVarint,
                                                 static_cast<RankEncoding>(9)};
  auto bad_ranks = ParseManifest(SerializeManifest(manifest));
  EXPECT_FALSE(bad_ranks.ok());
}

TEST(CodecValidationTest, LegacyManifestLineParsesAsDefaultFormat) {
  // A pre-codec MANIFEST has 8-token file lines; they must parse to the
  // (varint, float32) baseline so old directories keep opening.
  std::string body = "xrank-manifest v1\n";
  body += "file dil.xrank kind 3 pages 7 crc 42\n";
  char commit[64];
  std::snprintf(commit, sizeof(commit), "commit %u\n", Crc32c(body));
  auto parsed = ParseManifest(body + commit);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->entries.size(), 1u);
  EXPECT_EQ(parsed->entries[0].format, PostingFormatSpec{});
  EXPECT_EQ(parsed->entries[0].page_count, 7u);
}

TEST(CodecValidationTest, TruncatedManifestLinesAreRefused) {
  // Lines with the codec suffix torn off mid-way (commit CRC recomputed, so
  // the line damage itself is what the parser judges). An 8-token prefix is
  // a *valid* legacy line by design — these are the in-between shapes.
  const char* bad_lines[] = {
      "file dil.xrank kind 3 pages 7 crc 42 codec",
      "file dil.xrank kind 3 pages 7 crc 42 codec 1",
      "file dil.xrank kind 3 pages 7 crc 42 codec 1 ranks",
      "file dil.xrank kind 3 pages 7 crc 42 kodec 1 ranks 2",
      "file dil.xrank kind 3 pages 7 crc 42 codec one ranks 2",
      "file dil.xrank kind 3 pages 7 crc 42 codec 1 ranks two",
  };
  for (const char* line : bad_lines) {
    std::string body = "xrank-manifest v1\n" + std::string(line) + "\n";
    char commit[64];
    std::snprintf(commit, sizeof(commit), "commit %u\n", Crc32c(body));
    auto parsed = ParseManifest(body + commit);
    EXPECT_FALSE(parsed.ok()) << line;
  }
}

}  // namespace
}  // namespace xrank::index
