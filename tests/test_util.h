#ifndef XRANK_TESTS_TEST_UTIL_H_
#define XRANK_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/builder.h"
#include "index/dil_index.h"
#include "index/hdil_index.h"
#include "index/index_builder.h"
#include "index/naive_index.h"
#include "index/rdil_index.h"
#include "rank/elem_rank.h"
#include "storage/buffer_pool.h"
#include "xml/parser.h"

namespace xrank::testutil {

// Parses documents, builds the graph + ElemRanks + every physical index
// (memory-backed), and exposes per-index buffer pools with cost models.
// Small enough to rebuild per test.
struct IndexedCorpus {
  graph::XmlGraph graph;
  rank::ElemRankResult ranks;
  index::ExtractionResult extracted;

  struct Instance {
    index::BuiltIndex built;
    std::unique_ptr<storage::CostModel> cost_model;
    std::unique_ptr<storage::BufferPool> pool;
  };
  std::map<index::IndexKind, Instance> indexes;

  storage::BufferPool* pool(index::IndexKind kind) {
    return indexes.at(kind).pool.get();
  }
  const index::Lexicon* lexicon(index::IndexKind kind) {
    return &indexes.at(kind).built.lexicon;
  }
  storage::CostModel* cost_model(index::IndexKind kind) {
    return indexes.at(kind).cost_model.get();
  }
  void DropCaches() {
    for (auto& [kind, instance] : indexes) {
      instance.pool->DropCache();
      instance.cost_model->Reset();
    }
  }
};

inline std::unique_ptr<IndexedCorpus> BuildIndexedCorpus(
    std::vector<std::pair<std::string, std::string>> docs,
    const index::HdilOptions& hdil_options = {},
    size_t buffer_pool_pages = 1024, const index::BuildOptions& build = {}) {
  auto corpus = std::make_unique<IndexedCorpus>();
  graph::GraphBuilder builder;
  for (const auto& [text, uri] : docs) {
    auto doc = xml::ParseDocument(text, uri);
    EXPECT_TRUE(doc.ok()) << doc.status();
    EXPECT_TRUE(builder.AddDocument(*doc).ok());
  }
  auto graph = std::move(builder).Finalize();
  EXPECT_TRUE(graph.ok()) << graph.status();
  corpus->graph = std::move(graph).value();

  auto ranks = rank::ComputeElemRank(corpus->graph, rank::ElemRankOptions{});
  EXPECT_TRUE(ranks.ok()) << ranks.status();
  corpus->ranks = std::move(ranks).value();

  index::ExtractionOptions extraction;
  extraction.build_naive = true;
  auto extracted =
      index::ExtractPostings(corpus->graph, corpus->ranks.ranks, extraction);
  EXPECT_TRUE(extracted.ok()) << extracted.status();
  corpus->extracted = std::move(extracted).value();

  auto install = [&](index::IndexKind kind, Result<index::BuiltIndex> built) {
    EXPECT_TRUE(built.ok()) << built.status();
    IndexedCorpus::Instance instance;
    instance.built = std::move(built).value();
    instance.cost_model = std::make_unique<storage::CostModel>();
    instance.pool = std::make_unique<storage::BufferPool>(
        instance.built.file.get(), buffer_pool_pages,
        instance.cost_model.get());
    corpus->indexes.emplace(kind, std::move(instance));
  };
  install(index::IndexKind::kDil,
          index::BuildDilIndex(corpus->extracted.dewey_postings,
                               storage::PageFile::CreateInMemory(), build));
  install(index::IndexKind::kRdil,
          index::BuildRdilIndex(corpus->extracted.dewey_postings,
                                storage::PageFile::CreateInMemory(), build));
  install(index::IndexKind::kHdil,
          index::BuildHdilIndex(corpus->extracted.dewey_postings,
                                storage::PageFile::CreateInMemory(),
                                hdil_options, build));
  install(index::IndexKind::kNaiveId,
          index::BuildNaiveIdIndex(corpus->extracted.naive_postings,
                                   storage::PageFile::CreateInMemory(), build));
  install(index::IndexKind::kNaiveRank,
          index::BuildNaiveRankIndex(corpus->extracted.naive_postings,
                                     storage::PageFile::CreateInMemory(),
                                     build));
  return corpus;
}

// The Figure 1 document used throughout the paper's examples.
inline const char* Figure1Xml() {
  return R"(
<workshop date="28 July 2000">
  <title> XML and IR: A SIGIR 2000 Workshop </title>
  <editors> David Carmel, Yoelle Maarek, Aya Soffer </editors>
  <proceedings>
    <paper id="1">
      <title> XQL and Proximal Nodes </title>
      <author> Ricardo Baeza-Yates </author>
      <author> Gonzalo Navarro </author>
      <abstract> We consider the recently proposed language </abstract>
      <body>
        <section name="Introduction">
          Searching on structured text is more important
        </section>
        <section name="Implementing XML Operations">
          <subsection name="Path Expressions">
            At first sight, the XQL query language looks
          </subsection>
        </section>
        <cite ref="2">Querying XML in Xyleme</cite>
        <cite xlink="paper/xmlql">A Query Language for XML</cite>
      </body>
    </paper>
    <paper id="2">
      <title> Querying XML in Xyleme </title>
      <body> xyleme supports XQL fragments </body>
    </paper>
  </proceedings>
</workshop>
)";
}

}  // namespace xrank::testutil

#endif  // XRANK_TESTS_TEST_UTIL_H_
