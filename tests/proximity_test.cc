// Tests for minimal-window proximity (the keyword-distance dimension of the
// paper's two-dimensional proximity metric, Section 2.3.2.2).

#include "query/proximity.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "common/random.h"

namespace xrank::query {
namespace {

TEST(MinimalWindowTest, AdjacentKeywords) {
  EXPECT_EQ(MinimalWindowSize({{5}, {6}}), 2u);
}

TEST(MinimalWindowTest, SingleList) {
  EXPECT_EQ(MinimalWindowSize({{7, 20, 90}}), 1u);
}

TEST(MinimalWindowTest, PicksTightestCombination) {
  // Lists: {1, 100}, {3, 102}, {50}: best window covers 3..102? No —
  // windows must include one from each: {1,3,50}=50, {100,102,50}=53,
  // {1,102,50}... minimal is [3,50,100]? Check: sorted events make the
  // optimum [3..100] = 98 vs [1..50] missing list2... Actually {1,3,50}
  // spans 1..50 = 50 words.
  EXPECT_EQ(MinimalWindowSize({{1, 100}, {3, 102}, {50}}), 50u);
}

TEST(MinimalWindowTest, OverlappingPositions) {
  // The same position in two lists gives window 1.
  EXPECT_EQ(MinimalWindowSize({{42}, {42}}), 1u);
}

TEST(MinimalWindowTest, EmptyListMeansNoWindow) {
  EXPECT_EQ(MinimalWindowSize({{1, 2}, {}}), 0u);
  EXPECT_EQ(MinimalWindowSize({}), 0u);
}

TEST(MinimalWindowTest, UnsortedInputHandled) {
  EXPECT_EQ(MinimalWindowSize({{100, 5}, {6, 200}}), 2u);
}

TEST(ProximityTest, ModesAndBounds) {
  EXPECT_DOUBLE_EQ(ProximityFromWindow(ProximityMode::kAlwaysOne, 999, 3),
                   1.0);
  EXPECT_DOUBLE_EQ(ProximityFromWindow(ProximityMode::kReciprocalWindow, 0, 2),
                   0.0);
  // Tightest packing scores 1.
  EXPECT_DOUBLE_EQ(ProximityFromWindow(ProximityMode::kReciprocalWindow, 2, 2),
                   1.0);
  EXPECT_DOUBLE_EQ(ProximityFromWindow(ProximityMode::kReciprocalWindow, 3, 3),
                   1.0);
  // Wider windows decay inversely.
  EXPECT_DOUBLE_EQ(
      ProximityFromWindow(ProximityMode::kReciprocalWindow, 10, 2), 0.2);
  // Never exceeds 1 even for degenerate windows.
  EXPECT_LE(ProximityFromWindow(ProximityMode::kReciprocalWindow, 1, 2), 1.0);
}

// Property: the sliding-window result equals brute force over all pairs of
// covering intervals.
class MinimalWindowPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MinimalWindowPropertyTest, MatchesBruteForce) {
  Random rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    size_t lists = 2 + rng.Uniform(3);
    std::vector<std::vector<uint32_t>> positions(lists);
    for (auto& list : positions) {
      size_t count = 1 + rng.Uniform(6);
      for (size_t i = 0; i < count; ++i) {
        list.push_back(static_cast<uint32_t>(rng.Uniform(60)));
      }
    }
    uint32_t fast = MinimalWindowSize(positions);

    // Brute force: try every combination via recursive enumeration.
    uint32_t best = UINT32_MAX;
    std::vector<uint32_t> chosen(lists);
    std::function<void(size_t)> enumerate = [&](size_t k) {
      if (k == lists) {
        uint32_t lo = chosen[0], hi = chosen[0];
        for (uint32_t p : chosen) {
          lo = std::min(lo, p);
          hi = std::max(hi, p);
        }
        best = std::min(best, hi - lo + 1);
        return;
      }
      for (uint32_t p : positions[k]) {
        chosen[k] = p;
        enumerate(k + 1);
      }
    };
    enumerate(0);
    EXPECT_EQ(fast, best);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimalWindowPropertyTest,
                         ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace xrank::query
