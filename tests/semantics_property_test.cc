// Cross-cutting property tests: for randomly generated corpora, the DIL
// result set must equal a brute-force evaluation of the paper's Section 2.2
// semantics, and all three Dewey-based processors must agree with each
// other on the full ranked result list.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "datagen/vocabulary.h"
#include "query/dil_query.h"
#include "query/hdil_query.h"
#include "query/rdil_query.h"
#include "test_util.h"
#include "xml/serializer.h"

namespace xrank {
namespace {

using index::IndexKind;
using query::ScoringOptions;
using testutil::BuildIndexedCorpus;
using testutil::IndexedCorpus;

// Generates a random small corpus with a tiny vocabulary (lots of keyword
// co-occurrence — the adversarial regime for R0 exclusion logic).
std::vector<std::pair<std::string, std::string>> RandomCorpus(uint64_t seed,
                                                              size_t docs) {
  Random rng(seed);
  datagen::Vocabulary vocab(8);  // tiny: heavy term overlap
  std::vector<std::pair<std::string, std::string>> out;
  std::function<std::unique_ptr<xml::Node>(size_t)> build =
      [&](size_t depth) -> std::unique_ptr<xml::Node> {
    auto node = xml::Node::MakeElement("n");
    size_t children = rng.Uniform(depth == 0 ? 1 : 4);
    if (rng.Bernoulli(0.7)) {
      std::string text;
      size_t words = 1 + rng.Uniform(4);
      for (size_t w = 0; w < words; ++w) {
        if (w > 0) text.push_back(' ');
        text += vocab.Word(rng.Uniform(vocab.size()));
      }
      node->AddChild(xml::Node::MakeText(std::move(text)));
    }
    for (size_t c = 0; c < children; ++c) node->AddChild(build(depth - 1));
    return node;
  };
  for (size_t d = 0; d < docs; ++d) {
    xml::Document doc;
    doc.uri = "doc" + std::to_string(d);
    doc.root = build(4);
    out.emplace_back(xml::Serialize(doc), doc.uri);
  }
  return out;
}

// Brute-force Result(Q) of Section 2.2 over the graph: v is a result iff
// for every keyword there is a child subtree (or direct value) containing
// the keyword that is not itself in R0.
std::set<dewey::DeweyId> BruteForceResults(
    const IndexedCorpus& corpus, const std::vector<std::string>& keywords) {
  const graph::XmlGraph& graph = corpus.graph;
  index::Analyzer analyzer;

  // contains*[v][k]: subtree of v contains keyword k.
  size_t n = graph.node_count();
  std::vector<std::vector<bool>> contains(n,
                                          std::vector<bool>(keywords.size()));
  // Direct text terms per element.
  for (graph::NodeId u = 0; u < n; ++u) {
    if (!graph.is_element(u)) continue;
    uint32_t position = 0;
    auto tokens = analyzer.Tokenize(graph.DirectText(u), &position);
    for (const auto& token : tokens) {
      for (size_t k = 0; k < keywords.size(); ++k) {
        if (token.term == keywords[k]) contains[u][k] = true;
      }
    }
  }
  // Propagate upward (children have larger NodeIds than parents in our
  // builder, so a reverse sweep suffices).
  for (graph::NodeId u = static_cast<graph::NodeId>(n); u-- > 0;) {
    if (!graph.is_element(u)) continue;
    graph::NodeId parent = graph.node(u).parent;
    if (parent == graph::kInvalidNode) continue;
    for (size_t k = 0; k < keywords.size(); ++k) {
      if (contains[u][k]) {
        // NOLINTNEXTLINE: vector<bool> reference semantics are fine here.
        contains[parent][k] = contains[parent][k] || true;
      }
    }
  }

  // R0: elements containing all keywords.
  auto in_r0 = [&](graph::NodeId u) {
    for (size_t k = 0; k < keywords.size(); ++k) {
      if (!contains[u][k]) return false;
    }
    return true;
  };

  // Result: for every keyword, some child c (element not in R0, or a value
  // child) with contains*(c, k).
  std::set<dewey::DeweyId> results;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (!graph.is_element(v) || !in_r0(v)) continue;
    bool ok = true;
    for (size_t k = 0; k < keywords.size() && ok; ++k) {
      bool witness = false;
      // Value children: direct occurrence.
      uint32_t position = 0;
      auto tokens = analyzer.Tokenize(graph.DirectText(v), &position);
      for (const auto& token : tokens) {
        if (token.term == keywords[k]) witness = true;
      }
      // Element children not in R0.
      for (graph::NodeId c : graph.node(v).element_children) {
        if (contains[c][k] && !in_r0(c)) witness = true;
      }
      ok = witness;
    }
    if (ok) results.insert(graph.node(v).dewey_id);
  }
  return results;
}

class SemanticsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SemanticsPropertyTest, DilMatchesBruteForceSemantics) {
  auto corpus = BuildIndexedCorpus(RandomCorpus(GetParam(), 6));
  datagen::Vocabulary vocab(8);
  Random rng(GetParam() * 31 + 7);

  for (int trial = 0; trial < 8; ++trial) {
    size_t nk = 1 + rng.Uniform(3);
    std::set<std::string> chosen;
    while (chosen.size() < nk) chosen.insert(vocab.Word(rng.Uniform(8)));
    std::vector<std::string> keywords(chosen.begin(), chosen.end());

    query::DilQueryProcessor dil(corpus->pool(IndexKind::kDil),
                                 corpus->lexicon(IndexKind::kDil),
                                 ScoringOptions{});
    auto response = dil.Execute(keywords, 10000);
    ASSERT_TRUE(response.ok()) << response.status();
    std::set<dewey::DeweyId> dil_results;
    for (const auto& result : response->results) {
      dil_results.insert(result.id);
    }
    std::set<dewey::DeweyId> expected = BruteForceResults(*corpus, keywords);
    EXPECT_EQ(dil_results, expected)
        << "keywords: " << keywords[0]
        << (keywords.size() > 1 ? "," + keywords[1] : "");
  }
}

TEST_P(SemanticsPropertyTest, ProcessorsFullyAgree) {
  auto corpus = BuildIndexedCorpus(RandomCorpus(GetParam() + 1000, 8));
  datagen::Vocabulary vocab(8);
  Random rng(GetParam() * 17 + 3);

  for (int trial = 0; trial < 6; ++trial) {
    size_t nk = 1 + rng.Uniform(3);
    std::set<std::string> chosen;
    while (chosen.size() < nk) chosen.insert(vocab.Word(rng.Uniform(8)));
    std::vector<std::string> keywords(chosen.begin(), chosen.end());

    query::DilQueryProcessor dil(corpus->pool(IndexKind::kDil),
                                 corpus->lexicon(IndexKind::kDil),
                                 ScoringOptions{});
    query::RdilQueryProcessor rdil(corpus->pool(IndexKind::kRdil),
                                   corpus->lexicon(IndexKind::kRdil),
                                   ScoringOptions{});
    query::HdilQueryProcessor hdil(corpus->pool(IndexKind::kHdil),
                                   corpus->lexicon(IndexKind::kHdil),
                                   ScoringOptions{});
    // Ground truth: the full ranked result list.
    auto full = dil.Execute(keywords, 100000);
    ASSERT_TRUE(full.ok());
    std::map<dewey::DeweyId, double> truth;
    for (const auto& result : full->results) {
      truth.emplace(result.id, result.rank);
    }
    for (size_t m : {3u, 50u}) {
      auto a = dil.Execute(keywords, m);
      auto b = rdil.Execute(keywords, m);
      auto c = hdil.Execute(keywords, m);
      ASSERT_TRUE(a.ok() && b.ok() && c.ok());
      ASSERT_EQ(a->results.size(), b->results.size());
      ASSERT_EQ(a->results.size(), c->results.size());
      // Each processor's i-th rank must match the true i-th rank (top-m
      // guarantee), and every returned id must carry its true rank. Ids may
      // legitimately permute within exact rank ties.
      for (const auto* response : {&*a, &*b, &*c}) {
        for (size_t i = 0; i < response->results.size(); ++i) {
          EXPECT_NEAR(response->results[i].rank, full->results[i].rank, 1e-9)
              << "m=" << m << " i=" << i;
          auto it = truth.find(response->results[i].id);
          ASSERT_NE(it, truth.end()) << "phantom result";
          EXPECT_NEAR(it->second, response->results[i].rank, 1e-9);
        }
      }
    }
  }
}

// The skip-block fast path (document-at-a-time merge over the DIL skip
// descriptors) must be invisible in the results: same ids, same ranks, same
// order as the exhaustive merge, for every query shape.
TEST_P(SemanticsPropertyTest, SkipMergeMatchesExhaustiveMerge) {
  auto corpus = BuildIndexedCorpus(RandomCorpus(GetParam() + 2000, 10));
  datagen::Vocabulary vocab(8);
  Random rng(GetParam() * 13 + 5);

  query::DilQueryProcessor skipping(corpus->pool(IndexKind::kDil),
                                    corpus->lexicon(IndexKind::kDil),
                                    ScoringOptions{},
                                    /*use_skip_blocks=*/true);
  query::DilQueryProcessor exhaustive(corpus->pool(IndexKind::kDil),
                                      corpus->lexicon(IndexKind::kDil),
                                      ScoringOptions{},
                                      /*use_skip_blocks=*/false);
  for (int trial = 0; trial < 8; ++trial) {
    size_t nk = 1 + rng.Uniform(3);
    std::set<std::string> chosen;
    while (chosen.size() < nk) chosen.insert(vocab.Word(rng.Uniform(8)));
    std::vector<std::string> keywords(chosen.begin(), chosen.end());

    for (size_t m : {3u, 10000u}) {
      auto fast = skipping.Execute(keywords, m);
      auto slow = exhaustive.Execute(keywords, m);
      ASSERT_TRUE(fast.ok() && slow.ok());
      ASSERT_EQ(fast->results.size(), slow->results.size())
          << "keywords: " << keywords[0] << " m=" << m;
      for (size_t i = 0; i < fast->results.size(); ++i) {
        EXPECT_EQ(fast->results[i].id, slow->results[i].id);
        EXPECT_NEAR(fast->results[i].rank, slow->results[i].rank, 1e-12);
      }
      EXPECT_EQ(slow->stats.pages_skipped, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemanticsPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

// On a corpus where one keyword is rare and the other's list spans many
// pages, the conjunctive merge must actually skip pages — and still produce
// exactly the exhaustive merge's results.
TEST(SkipBlockTest, SkipsPagesOnSparseConjunctiveQuery) {
  std::vector<std::pair<std::string, std::string>> docs;
  constexpr size_t kDocs = 400;
  for (size_t d = 0; d < kDocs; ++d) {
    std::string text = "<doc><t>";
    for (int w = 0; w < 12; ++w) text += "common ";
    if (d == 0 || d + 1 == kDocs) text += "rare ";
    text += "</t></doc>";
    docs.emplace_back(std::move(text), "doc" + std::to_string(d));
  }
  auto corpus = BuildIndexedCorpus(std::move(docs));

  query::DilQueryProcessor skipping(corpus->pool(IndexKind::kDil),
                                    corpus->lexicon(IndexKind::kDil),
                                    ScoringOptions{},
                                    /*use_skip_blocks=*/true);
  query::DilQueryProcessor exhaustive(corpus->pool(IndexKind::kDil),
                                      corpus->lexicon(IndexKind::kDil),
                                      ScoringOptions{},
                                      /*use_skip_blocks=*/false);
  std::vector<std::string> keywords = {"common", "rare"};
  auto fast = skipping.Execute(keywords, 100);
  auto slow = exhaustive.Execute(keywords, 100);
  ASSERT_TRUE(fast.ok()) << fast.status();
  ASSERT_TRUE(slow.ok()) << slow.status();

  ASSERT_GT(slow->results.size(), 0u);
  ASSERT_EQ(fast->results.size(), slow->results.size());
  for (size_t i = 0; i < fast->results.size(); ++i) {
    EXPECT_EQ(fast->results[i].id, slow->results[i].id);
    EXPECT_NEAR(fast->results[i].rank, slow->results[i].rank, 1e-12);
  }
  // The 'common' list spans many pages; only its first and last documents
  // can produce results, so the fast path must leap over the middle.
  EXPECT_GT(fast->stats.pages_skipped, 0u);
  EXPECT_LT(fast->stats.postings_scanned, slow->stats.postings_scanned);
  EXPECT_EQ(slow->stats.pages_skipped, 0u);
}

}  // namespace
}  // namespace xrank
