// Unit and property tests for Dewey IDs and their codecs — the invariants
// the whole index layer rests on: ancestor IDs are prefixes, lexicographic
// order is document order, and codecs round-trip.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "dewey/codec.h"
#include "dewey/dewey_id.h"

namespace xrank::dewey {
namespace {

TEST(DeweyIdTest, BasicAccessors) {
  DeweyId id({5, 0, 3, 0, 1});
  EXPECT_EQ(id.depth(), 5u);
  EXPECT_EQ(id.document_id(), 5u);
  EXPECT_EQ(id.component(2), 3u);
  EXPECT_FALSE(id.empty());
  EXPECT_TRUE(DeweyId().empty());
}

TEST(DeweyIdTest, ToStringAndBack) {
  DeweyId id({5, 0, 3, 0, 0});
  EXPECT_EQ(id.ToString(), "5.0.3.0.0");
  auto parsed = DeweyId::FromString("5.0.3.0.0");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, id);
  EXPECT_EQ(DeweyId().ToString(), "");
  auto empty = DeweyId::FromString("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(DeweyIdTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(DeweyId::FromString("1.x.2").ok());
  EXPECT_FALSE(DeweyId::FromString("99999999999").ok());
}

TEST(DeweyIdTest, ParentAndChild) {
  DeweyId id({5, 0, 3});
  EXPECT_EQ(id.Parent(), DeweyId({5, 0}));
  EXPECT_EQ(id.Child(7), DeweyId({5, 0, 3, 7}));
  EXPECT_EQ(DeweyId({5}).Parent(), DeweyId());
}

TEST(DeweyIdTest, PrefixRelation) {
  DeweyId ancestor({5, 0});
  DeweyId descendant({5, 0, 3, 1});
  EXPECT_TRUE(ancestor.IsPrefixOf(descendant));
  EXPECT_TRUE(ancestor.IsPrefixOf(ancestor));
  EXPECT_FALSE(descendant.IsPrefixOf(ancestor));
  EXPECT_FALSE(DeweyId({5, 1}).IsPrefixOf(descendant));
  EXPECT_TRUE(DeweyId().IsPrefixOf(descendant));
}

TEST(DeweyIdTest, CommonPrefixLength) {
  DeweyId a({5, 0, 3, 0, 0});
  DeweyId b({5, 0, 3, 0, 1});
  DeweyId c({6, 0});
  EXPECT_EQ(a.CommonPrefixLength(b), 4u);
  EXPECT_EQ(a.CommonPrefixLength(c), 0u);
  EXPECT_EQ(a.CommonPrefixLength(a), 5u);
}

TEST(DeweyIdTest, OrderingIsDocumentOrder) {
  // Paper Figure 4: entries sorted by Dewey ID cluster common ancestors.
  std::vector<DeweyId> ids = {
      DeweyId({6, 0, 3, 8, 3}), DeweyId({5, 0, 3, 0, 0}),
      DeweyId({5, 0, 3, 0, 1}), DeweyId({5}),
      DeweyId({5, 0, 3}),       DeweyId({8, 2, 1, 4, 2}),
  };
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids[0], DeweyId({5}));
  EXPECT_EQ(ids[1], DeweyId({5, 0, 3}));
  EXPECT_EQ(ids[2], DeweyId({5, 0, 3, 0, 0}));
  EXPECT_EQ(ids[3], DeweyId({5, 0, 3, 0, 1}));
  EXPECT_EQ(ids[4], DeweyId({6, 0, 3, 8, 3}));
  EXPECT_EQ(ids[5], DeweyId({8, 2, 1, 4, 2}));
}

TEST(DeweyIdTest, AncestorSortsBeforeDescendant) {
  DeweyId ancestor({1, 2});
  DeweyId descendant({1, 2, 0});
  EXPECT_LT(ancestor, descendant);
}

TEST(DeweyIdTest, HashDistinguishes) {
  EXPECT_NE(DeweyId({1, 2}).Hash(), DeweyId({2, 1}).Hash());
  EXPECT_EQ(DeweyId({1, 2}).Hash(), DeweyId({1, 2}).Hash());
}

TEST(DeweyCodecTest, RawRoundTrip) {
  const DeweyId cases[] = {DeweyId(), DeweyId({0}), DeweyId({5, 0, 3, 0, 0}),
                           DeweyId({1000000, 0, 128, 16384})};
  for (const DeweyId& id : cases) {
    std::string buf;
    EncodeDeweyId(id, &buf);
    EXPECT_EQ(buf.size(), EncodedDeweyIdLength(id));
    size_t offset = 0;
    auto decoded = DecodeDeweyId(buf, &offset);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, id);
    EXPECT_EQ(offset, buf.size());
  }
}

TEST(DeweyCodecTest, DeltaRoundTrip) {
  DeweyId previous({5, 0, 3, 0, 0});
  const DeweyId cases[] = {DeweyId({5, 0, 3, 0, 1}), DeweyId({5, 0, 4}),
                           DeweyId({6}), DeweyId({5, 0, 3, 0, 0, 2})};
  for (const DeweyId& id : cases) {
    std::string buf;
    EncodeDeweyIdDelta(previous, id, &buf);
    EXPECT_EQ(buf.size(), EncodedDeweyIdDeltaLength(previous, id));
    size_t offset = 0;
    auto decoded = DecodeDeweyIdDelta(previous, buf, &offset);
    ASSERT_TRUE(decoded.ok()) << id.ToString();
    EXPECT_EQ(*decoded, id);
  }
}

TEST(DeweyCodecTest, DeltaIsSmallerForSiblings) {
  DeweyId previous({5, 0, 3, 0, 0});
  DeweyId sibling({5, 0, 3, 0, 1});
  std::string raw, delta;
  EncodeDeweyId(sibling, &raw);
  EncodeDeweyIdDelta(previous, sibling, &delta);
  EXPECT_LT(delta.size(), raw.size());
}

TEST(DeweyCodecTest, DecodeRejectsTruncation) {
  std::string buf;
  EncodeDeweyId(DeweyId({1, 2, 3}), &buf);
  buf.resize(buf.size() - 1);
  size_t offset = 0;
  EXPECT_FALSE(DecodeDeweyId(buf, &offset).ok());
}

// Property sweep: random ID pairs preserve order/prefix/codec invariants.
class DeweyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeweyPropertyTest, RandomPairsSatisfyInvariants) {
  xrank::Random rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    auto random_id = [&rng]() {
      size_t depth = 1 + rng.Uniform(8);
      std::vector<uint32_t> components;
      for (size_t i = 0; i < depth; ++i) {
        components.push_back(static_cast<uint32_t>(rng.Uniform(12)));
      }
      return DeweyId(std::move(components));
    };
    DeweyId a = random_id();
    DeweyId b = random_id();

    // Comparison is a strict weak order consistent with equality.
    EXPECT_EQ(a == b, !(a < b) && !(b < a));
    // CommonPrefixLength is symmetric and bounded.
    EXPECT_EQ(a.CommonPrefixLength(b), b.CommonPrefixLength(a));
    EXPECT_LE(a.CommonPrefixLength(b), std::min(a.depth(), b.depth()));
    // Prefix(CPL) is a prefix of both.
    DeweyId meet = a.Prefix(a.CommonPrefixLength(b));
    EXPECT_TRUE(meet.IsPrefixOf(a));
    EXPECT_TRUE(meet.IsPrefixOf(b));
    // IsPrefixOf iff CPL == own depth.
    EXPECT_EQ(a.IsPrefixOf(b), a.CommonPrefixLength(b) == a.depth());

    // Raw codec round-trips.
    std::string buf;
    EncodeDeweyId(a, &buf);
    size_t offset = 0;
    auto decoded = DecodeDeweyId(buf, &offset);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, a);

    // Delta codec round-trips against an arbitrary previous ID.
    std::string delta;
    EncodeDeweyIdDelta(a, b, &delta);
    offset = 0;
    auto delta_decoded = DecodeDeweyIdDelta(a, delta, &offset);
    ASSERT_TRUE(delta_decoded.ok());
    EXPECT_EQ(*delta_decoded, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeweyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace xrank::dewey
