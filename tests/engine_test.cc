// End-to-end tests of the XRankEngine facade over the paper's Figure 1
// document and small synthetic corpora.

#include "core/engine.h"

#include <gtest/gtest.h>

#include "datagen/dblp_gen.h"
#include "datagen/xmark_gen.h"
#include "index/index_builder.h"
#include "storage/page_file.h"
#include "xml/parser.h"

namespace xrank {
namespace {

using core::EngineOptions;
using core::EngineResponse;
using core::XRankEngine;
using index::IndexKind;

// The workshop-proceedings document of paper Figure 1 (abbreviated but
// structurally faithful: nested sections, IDREF and XLink references).
constexpr const char* kFigure1Xml = R"(
<workshop date="28 July 2000">
  <title> XML and IR: A SIGIR 2000 Workshop </title>
  <editors> David Carmel, Yoelle Maarek, Aya Soffer </editors>
  <proceedings>
    <paper id="1">
      <title> XQL and Proximal Nodes </title>
      <author> Ricardo Baeza-Yates </author>
      <author> Gonzalo Navarro </author>
      <abstract> We consider the recently proposed language </abstract>
      <body>
        <section name="Introduction">
          Searching on structured text is more important
        </section>
        <section name="Implementing XML Operations">
          <subsection name="Path Expressions">
            At first sight, the XQL query language looks
          </subsection>
        </section>
        <cite ref="2">Querying XML in Xyleme</cite>
        <cite xlink="paper/xmlql">A Query Language for XML</cite>
      </body>
    </paper>
    <paper id="2">
      <title> Querying XML in Xyleme </title>
      <body> xyleme supports XQL fragments </body>
    </paper>
  </proceedings>
</workshop>
)";

std::vector<xml::Document> Figure1Collection() {
  auto doc = xml::ParseDocument(kFigure1Xml, "figure1.xml");
  EXPECT_TRUE(doc.ok()) << doc.status();
  std::vector<xml::Document> docs;
  docs.push_back(std::move(doc).value());
  return docs;
}

EngineOptions AllIndexOptions() {
  EngineOptions options;
  options.indexes = {IndexKind::kNaiveId, IndexKind::kNaiveRank,
                     IndexKind::kDil, IndexKind::kRdil, IndexKind::kHdil};
  return options;
}

TEST(EngineTest, BuildsFromFigure1) {
  auto engine = XRankEngine::Build(Figure1Collection(), AllIndexOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_GT((*engine)->graph().element_count(), 10u);
  EXPECT_TRUE((*engine)->elem_rank_result().converged);
  for (IndexKind kind :
       {IndexKind::kNaiveId, IndexKind::kNaiveRank, IndexKind::kDil,
        IndexKind::kRdil, IndexKind::kHdil}) {
    EXPECT_TRUE((*engine)->has_index(kind));
    EXPECT_GT((*engine)->index_stats(kind).entry_count, 0u);
  }
}

// The paper's running example: 'XQL language' must return the <subsection>
// (most specific element) rather than its <section>/<body> ancestors, plus
// the <paper> element which has independent occurrences in <title> and
// <abstract>-adjacent elements (Section 2.2).
TEST(EngineTest, Figure1MostSpecificResult) {
  auto engine = XRankEngine::Build(Figure1Collection(), AllIndexOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();

  for (IndexKind kind :
       {IndexKind::kDil, IndexKind::kRdil, IndexKind::kHdil}) {
    auto response = (*engine)->Query("XQL language", 10, kind);
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_FALSE(response->results.empty())
        << "no results via " << index::IndexKindName(kind);
    std::vector<std::string> tags;
    for (const auto& result : response->results) {
      tags.push_back(result.element_tag);
    }
    // The subsection directly contains both keywords.
    EXPECT_NE(std::find(tags.begin(), tags.end(), "subsection"), tags.end())
        << "via " << index::IndexKindName(kind);
    // Its ancestors whose only occurrences come through it must not appear.
    EXPECT_EQ(std::find(tags.begin(), tags.end(), "section"), tags.end())
        << "via " << index::IndexKindName(kind);
    EXPECT_EQ(std::find(tags.begin(), tags.end(), "body"), tags.end())
        << "via " << index::IndexKindName(kind);
  }
}

// All three Dewey-based processors must agree on the result set and ranks.
TEST(EngineTest, ProcessorsAgreeOnFigure1) {
  auto engine = XRankEngine::Build(Figure1Collection(), AllIndexOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();

  for (const char* query : {"XQL", "XQL language", "Ricardo XQL",
                            "xml workshop", "querying xyleme"}) {
    auto dil = (*engine)->Query(query, 20, IndexKind::kDil);
    auto rdil = (*engine)->Query(query, 20, IndexKind::kRdil);
    auto hdil = (*engine)->Query(query, 20, IndexKind::kHdil);
    ASSERT_TRUE(dil.ok() && rdil.ok() && hdil.ok()) << query;
    ASSERT_EQ(dil->results.size(), rdil->results.size()) << query;
    ASSERT_EQ(dil->results.size(), hdil->results.size()) << query;
    for (size_t i = 0; i < dil->results.size(); ++i) {
      EXPECT_EQ(dil->results[i].id, rdil->results[i].id) << query;
      EXPECT_NEAR(dil->results[i].rank, rdil->results[i].rank, 1e-9) << query;
      EXPECT_EQ(dil->results[i].id, hdil->results[i].id) << query;
      EXPECT_NEAR(dil->results[i].rank, hdil->results[i].rank, 1e-9) << query;
    }
  }
}

TEST(EngineTest, DblpCorpusAgreementAcrossIndexes) {
  datagen::DblpOptions gen;
  gen.num_papers = 120;
  datagen::Corpus corpus = datagen::GenerateDblp(gen);
  auto engine =
      XRankEngine::Build(std::move(corpus.documents), AllIndexOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();

  const auto& quad = corpus.planted.high_correlation[0];
  for (size_t n = 1; n <= 4; ++n) {
    std::vector<std::string> keywords(quad.begin(), quad.begin() + n);
    auto dil = (*engine)->QueryKeywords(keywords, 10, IndexKind::kDil);
    auto rdil = (*engine)->QueryKeywords(keywords, 10, IndexKind::kRdil);
    auto hdil = (*engine)->QueryKeywords(keywords, 10, IndexKind::kHdil);
    ASSERT_TRUE(dil.ok() && rdil.ok() && hdil.ok());
    ASSERT_EQ(dil->results.size(), rdil->results.size()) << n << " keywords";
    ASSERT_EQ(dil->results.size(), hdil->results.size()) << n << " keywords";
    for (size_t i = 0; i < dil->results.size(); ++i) {
      EXPECT_EQ(dil->results[i].id, rdil->results[i].id);
      EXPECT_EQ(dil->results[i].id, hdil->results[i].id);
      EXPECT_NEAR(dil->results[i].rank, rdil->results[i].rank, 1e-9);
    }
  }
}

TEST(EngineTest, XMarkDeepResults) {
  datagen::XMarkOptions gen;
  gen.num_items = 60;
  gen.num_open_auctions = 40;
  gen.num_closed_auctions = 20;
  gen.num_people = 30;
  datagen::Corpus corpus = datagen::GenerateXMark(gen);
  auto engine =
      XRankEngine::Build(std::move(corpus.documents), AllIndexOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();

  const auto& quad = corpus.planted.high_correlation[0];
  std::vector<std::string> keywords = {quad[0], quad[1]};
  auto response = (*engine)->QueryKeywords(keywords, 10, IndexKind::kDil);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_FALSE(response->results.empty());
  // Planted quadruples live in deep text elements.
  EXPECT_GE(response->results[0].id.depth(), 6u);
}

TEST(EngineTest, AnswerNodeMapping) {
  EngineOptions options = AllIndexOptions();
  options.answer_node_tags = {"workshop", "paper", "section"};
  auto engine = XRankEngine::Build(Figure1Collection(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto response = (*engine)->Query("XQL language", 10, IndexKind::kDil);
  ASSERT_TRUE(response.ok()) << response.status();
  for (const auto& result : response->results) {
    EXPECT_TRUE(result.element_tag == "workshop" ||
                result.element_tag == "paper" ||
                result.element_tag == "section")
        << result.element_tag;
  }
}

TEST(EngineTest, MissingKeywordYieldsEmpty) {
  auto engine = XRankEngine::Build(Figure1Collection(), AllIndexOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();
  for (IndexKind kind :
       {IndexKind::kNaiveId, IndexKind::kNaiveRank, IndexKind::kDil,
        IndexKind::kRdil, IndexKind::kHdil}) {
    auto response = (*engine)->Query("XQL zzznotaword", 10, kind);
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_TRUE(response->results.empty());
  }
}

TEST(EngineTest, DiskBackedIndexesWork) {
  EngineOptions options = AllIndexOptions();
  options.disk_dir = ::testing::TempDir();
  auto engine = XRankEngine::Build(Figure1Collection(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  for (IndexKind kind :
       {IndexKind::kNaiveId, IndexKind::kNaiveRank, IndexKind::kDil,
        IndexKind::kRdil, IndexKind::kHdil}) {
    auto response = (*engine)->Query("XQL language", 10, kind);
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_FALSE(response->results.empty()) << index::IndexKindName(kind);
  }
  // The index files really are on disk.
  std::string path = options.disk_dir + "/DIL.xrank";
  auto file = storage::PageFile::OpenOnDisk(path);
  ASSERT_TRUE(file.ok()) << file.status();
  auto reopened = index::OpenIndex(std::move(*file));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->kind, IndexKind::kDil);
}

TEST(EngineTest, WarmCacheModeReusesPages) {
  EngineOptions options;
  options.indexes = {IndexKind::kDil};
  options.cold_cache_per_query = false;
  auto engine = XRankEngine::Build(Figure1Collection(), options);
  ASSERT_TRUE(engine.ok());
  auto first = (*engine)->Query("XQL language", 10, IndexKind::kDil);
  ASSERT_TRUE(first.ok());
  auto second = (*engine)->Query("XQL language", 10, IndexKind::kDil);
  ASSERT_TRUE(second.ok());
  // Warm run pays no physical reads.
  EXPECT_GT(first->stats.sequential_reads + first->stats.random_reads, 0u);
  EXPECT_EQ(second->stats.sequential_reads + second->stats.random_reads, 0u);
  EXPECT_EQ(first->results.size(), second->results.size());
}

TEST(EngineTest, QueryUnbuiltIndexFails) {
  EngineOptions options;
  options.indexes = {IndexKind::kDil};
  auto engine = XRankEngine::Build(Figure1Collection(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto response = (*engine)->Query("XQL", 10, IndexKind::kRdil);
  EXPECT_FALSE(response.ok());
}

}  // namespace
}  // namespace xrank
