// Tests for crash-safe live index updates: WAL-backed AddDocument with
// recovery replay, snapshot-isolated queries over base + segments + delta,
// background flush/compaction with failpoint-injected faults at every
// commit window, backpressure, and cache warmth across flushes.

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/engine.h"
#include "index/manifest.h"
#include "storage/wal.h"
#include "xml/parser.h"

namespace xrank {
namespace {

using core::EngineOptions;
using core::EngineResponse;
using core::XRankEngine;
using fail::Action;
using fail::FailPoints;
using fail::FailPointSpec;
using fail::ScopedFailPoint;
using index::IndexKind;

constexpr IndexKind kAllKinds[] = {IndexKind::kNaiveId, IndexKind::kNaiveRank,
                                   IndexKind::kDil, IndexKind::kRdil,
                                   IndexKind::kHdil};

std::vector<xml::Document> BaseCollection() {
  std::vector<xml::Document> docs;
  const char* sources[] = {
      "<a><t>shared alpha one</t></a>",
      "<a><t>shared alpha two</t></a>",
      "<a><t>shared alpha three</t></a>",
  };
  const char* uris[] = {"d1.xml", "d2.xml", "d3.xml"};
  for (int i = 0; i < 3; ++i) {
    auto doc = xml::ParseDocument(sources[i], uris[i]);
    EXPECT_TRUE(doc.ok()) << doc.status();
    docs.push_back(std::move(doc).value());
  }
  return docs;
}

// XML body for the i-th live-added document; all contain "shared live".
std::string LiveXml(int i) {
  return "<a><t>shared live fresh" + std::to_string(i) + "</t></a>";
}
std::string LiveUri(int i) { return "live" + std::to_string(i) + ".xml"; }

// In-memory engine options with inline (deterministic) maintenance.
EngineOptions InlineOptions() {
  EngineOptions options;
  options.indexes = {IndexKind::kNaiveId, IndexKind::kNaiveRank,
                     IndexKind::kDil, IndexKind::kRdil, IndexKind::kHdil};
  options.background_maintenance = false;
  // Keep automatic flushing out of the way; tests flush explicitly.
  options.max_delta_documents = 64;
  options.flush_delta_documents = 64;
  options.compact_segment_count = 0;
  return options;
}

// A unique directory under the test temp root, wiped of any files a
// previous run left behind (index files, segments, WAL, MANIFEST).
std::string FreshDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "/lu_" + name;
  ::mkdir(dir.c_str(), 0755);
  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* entry = ::readdir(d)) {
      std::string file = entry->d_name;
      if (file == "." || file == "..") continue;
      std::remove((dir + "/" + file).c_str());
    }
    ::closedir(d);
  }
  return dir;
}

EngineOptions DiskOptions(const std::string& dir) {
  EngineOptions options = InlineOptions();
  options.indexes = {IndexKind::kDil, IndexKind::kHdil};
  options.disk_dir = dir;
  return options;
}

size_t CountDocResults(const EngineResponse& response,
                       const std::string& uri) {
  size_t count = 0;
  for (const auto& result : response.results) {
    if (result.document_uri == uri) ++count;
  }
  return count;
}

void ExpectSameResults(const EngineResponse& actual,
                       const EngineResponse& expected, const char* label) {
  ASSERT_EQ(actual.results.size(), expected.results.size()) << label;
  for (size_t i = 0; i < actual.results.size(); ++i) {
    EXPECT_EQ(actual.results[i].id, expected.results[i].id) << label;
    EXPECT_NEAR(actual.results[i].rank, expected.results[i].rank, 1e-12)
        << label;
    EXPECT_EQ(actual.results[i].document_uri,
              expected.results[i].document_uri)
        << label;
  }
}

class LiveUpdateTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::Instance().DisarmAll(); }
};

// --- visibility and basic semantics ---

TEST_F(LiveUpdateTest, AddedDocumentVisibleImmediatelyAcrossAllKinds) {
  auto engine = XRankEngine::Build(BaseCollection(), InlineOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE((*engine)->AddDocument(LiveUri(1), LiveXml(1)).ok());

  for (IndexKind kind : kAllKinds) {
    auto response = (*engine)->Query("shared", 20, kind);
    ASSERT_TRUE(response.ok())
        << index::IndexKindName(kind) << ": " << response.status();
    EXPECT_GT(CountDocResults(*response, LiveUri(1)), 0u)
        << index::IndexKindName(kind);
    EXPECT_GT(CountDocResults(*response, "d1.xml"), 0u)
        << index::IndexKindName(kind);
  }
  // Terms unique to the new document resolve too.
  auto fresh = (*engine)->Query("fresh1", 10, IndexKind::kDil);
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(CountDocResults(*fresh, LiveUri(1)), 0u);
}

TEST_F(LiveUpdateTest, MalformedDocumentRejectedBeforeLogging) {
  auto engine = XRankEngine::Build(BaseCollection(), InlineOptions());
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE((*engine)->AddDocument("bad.xml", "<a><unclosed>").ok());
  EXPECT_EQ((*engine)->update_counters().wal_appends, 0u);
}

TEST_F(LiveUpdateTest, DuplicateUriRejectedUntilDeleted) {
  auto engine = XRankEngine::Build(BaseCollection(), InlineOptions());
  ASSERT_TRUE(engine.ok());
  // Collides with a base document.
  EXPECT_FALSE((*engine)->AddDocument("d1.xml", LiveXml(1)).ok());
  // Collides with a live document.
  ASSERT_TRUE((*engine)->AddDocument(LiveUri(1), LiveXml(1)).ok());
  EXPECT_FALSE((*engine)->AddDocument(LiveUri(1), LiveXml(2)).ok());
  // A deleted URI is free again.
  ASSERT_TRUE((*engine)->DeleteDocument(LiveUri(1)).ok());
  EXPECT_TRUE((*engine)->AddDocument(LiveUri(1), LiveXml(3)).ok());
}

TEST_F(LiveUpdateTest, DeleteLiveDocumentFiltersImmediately) {
  auto engine = XRankEngine::Build(BaseCollection(), InlineOptions());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->AddDocument(LiveUri(1), LiveXml(1)).ok());
  ASSERT_TRUE((*engine)->AddDocument(LiveUri(2), LiveXml(2)).ok());
  ASSERT_TRUE((*engine)->DeleteDocument(LiveUri(1)).ok());
  EXPECT_EQ((*engine)->deleted_document_count(), 1u);
  for (IndexKind kind : kAllKinds) {
    auto response = (*engine)->Query("shared", 20, kind);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(CountDocResults(*response, LiveUri(1)), 0u)
        << index::IndexKindName(kind);
    EXPECT_GT(CountDocResults(*response, LiveUri(2)), 0u)
        << index::IndexKindName(kind);
  }
}

// --- flush / compaction result invariance (snapshot regrouping) ---

TEST_F(LiveUpdateTest, FlushAndCompactionPreserveResults) {
  auto engine = XRankEngine::Build(BaseCollection(), InlineOptions());
  ASSERT_TRUE(engine.ok());
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE((*engine)->AddDocument(LiveUri(i), LiveXml(i)).ok());
  }
  std::map<IndexKind, EngineResponse> before;
  for (IndexKind kind : kAllKinds) {
    auto response = (*engine)->Query("shared", 20, kind);
    ASSERT_TRUE(response.ok());
    before.emplace(kind, std::move(response).value());
  }

  // Delta -> segment 1.
  ASSERT_TRUE((*engine)->Flush().ok());
  EXPECT_EQ((*engine)->update_counters().segment_count, 1u);
  EXPECT_EQ((*engine)->update_counters().delta_documents, 0u);
  for (IndexKind kind : kAllKinds) {
    auto response = (*engine)->Query("shared", 20, kind);
    ASSERT_TRUE(response.ok());
    ExpectSameResults(*response, before.at(kind), "after flush");
  }

  // More adds -> segment 2, then merge both into one.
  for (int i = 5; i <= 6; ++i) {
    ASSERT_TRUE((*engine)->AddDocument(LiveUri(i), LiveXml(i)).ok());
  }
  std::map<IndexKind, EngineResponse> with_six;
  for (IndexKind kind : kAllKinds) {
    auto response = (*engine)->Query("shared", 20, kind);
    ASSERT_TRUE(response.ok());
    with_six.emplace(kind, std::move(response).value());
  }
  ASSERT_TRUE((*engine)->Flush().ok());
  EXPECT_EQ((*engine)->update_counters().segment_count, 2u);
  ASSERT_TRUE((*engine)->CompactSegments().ok());
  EXPECT_EQ((*engine)->update_counters().segment_count, 1u);
  for (IndexKind kind : kAllKinds) {
    auto response = (*engine)->Query("shared", 20, kind);
    ASSERT_TRUE(response.ok());
    ExpectSameResults(*response, with_six.at(kind), "after compaction");
  }
}

TEST_F(LiveUpdateTest, CompactionDropsTombstonedLiveDocuments) {
  auto engine = XRankEngine::Build(BaseCollection(), InlineOptions());
  ASSERT_TRUE(engine.ok());
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE((*engine)->AddDocument(LiveUri(i), LiveXml(i)).ok());
  }
  ASSERT_TRUE((*engine)->Flush().ok());
  ASSERT_TRUE((*engine)->DeleteDocument(LiveUri(2)).ok());
  ASSERT_TRUE((*engine)->CompactSegments().ok());
  // The tombstoned live document is physically gone, and its tombstone
  // with it.
  EXPECT_EQ((*engine)->deleted_document_count(), 0u);
  EXPECT_EQ((*engine)->update_counters().added_documents, 2u);
  auto response = (*engine)->Query("shared", 20, IndexKind::kDil);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(CountDocResults(*response, LiveUri(2)), 0u);
  EXPECT_GT(CountDocResults(*response, LiveUri(1)), 0u);
  EXPECT_GT(CountDocResults(*response, LiveUri(3)), 0u);
  // The freed URI is usable again.
  EXPECT_TRUE((*engine)->AddDocument(LiveUri(2), LiveXml(9)).ok());
}

// --- crash-recovery (WAL replay on Open) ---

TEST_F(LiveUpdateTest, ReopenReplaysUnflushedAdds) {
  std::string dir = FreshDir("replay");
  std::map<IndexKind, EngineResponse> before;
  {
    auto engine = XRankEngine::Build(BaseCollection(), DiskOptions(dir));
    ASSERT_TRUE(engine.ok()) << engine.status();
    for (int i = 1; i <= 3; ++i) {
      ASSERT_TRUE((*engine)->AddDocument(LiveUri(i), LiveXml(i)).ok());
    }
    for (IndexKind kind : {IndexKind::kDil, IndexKind::kHdil}) {
      auto response = (*engine)->Query("shared", 20, kind);
      ASSERT_TRUE(response.ok());
      before.emplace(kind, std::move(response).value());
    }
    // Engine destroyed without Flush: the adds exist only in the WAL.
  }
  auto reopened = XRankEngine::Open(BaseCollection(), DiskOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->update_counters().wal_replayed_records, 3u);
  EXPECT_EQ((*reopened)->update_counters().added_documents, 3u);
  for (IndexKind kind : {IndexKind::kDil, IndexKind::kHdil}) {
    auto response = (*reopened)->Query("shared", 20, kind);
    ASSERT_TRUE(response.ok());
    ExpectSameResults(*response, before.at(kind), "after reopen");
  }
}

TEST_F(LiveUpdateTest, ReopenServesFlushedSegmentsAndReplaysTheRest) {
  std::string dir = FreshDir("segments");
  EngineResponse before;
  {
    auto engine = XRankEngine::Build(BaseCollection(), DiskOptions(dir));
    ASSERT_TRUE(engine.ok());
    for (int i = 1; i <= 2; ++i) {
      ASSERT_TRUE((*engine)->AddDocument(LiveUri(i), LiveXml(i)).ok());
    }
    ASSERT_TRUE((*engine)->Flush().ok());
    ASSERT_TRUE((*engine)->AddDocument(LiveUri(3), LiveXml(3)).ok());
    auto response = (*engine)->Query("shared", 20, IndexKind::kDil);
    ASSERT_TRUE(response.ok());
    before = std::move(response).value();
  }
  auto reopened = XRankEngine::Open(BaseCollection(), DiskOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  // The flushed segment serves from disk; only the last add replays.
  EXPECT_EQ((*reopened)->update_counters().segment_count, 1u);
  EXPECT_EQ((*reopened)->update_counters().delta_documents, 1u);
  auto response = (*reopened)->Query("shared", 20, IndexKind::kDil);
  ASSERT_TRUE(response.ok());
  ExpectSameResults(*response, before, "after reopen with segment");
}

TEST_F(LiveUpdateTest, DeletesOfLiveAndBaseDocumentsSurviveReopen) {
  std::string dir = FreshDir("tombstones");
  {
    auto engine = XRankEngine::Build(BaseCollection(), DiskOptions(dir));
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->AddDocument(LiveUri(1), LiveXml(1)).ok());
    ASSERT_TRUE((*engine)->AddDocument(LiveUri(2), LiveXml(2)).ok());
    ASSERT_TRUE((*engine)->DeleteDocument("d2.xml").ok());     // base doc
    ASSERT_TRUE((*engine)->DeleteDocument(LiveUri(1)).ok());   // delta doc
  }
  auto reopened = XRankEngine::Open(BaseCollection(), DiskOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->deleted_document_count(), 2u);
  auto response = (*reopened)->Query("shared", 20, IndexKind::kDil);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(CountDocResults(*response, "d2.xml"), 0u);
  EXPECT_EQ(CountDocResults(*response, LiveUri(1)), 0u);
  EXPECT_GT(CountDocResults(*response, LiveUri(2)), 0u);
}

TEST_F(LiveUpdateTest, TornWalTailIsTruncatedOnReopen) {
  std::string dir = FreshDir("torntail");
  {
    auto engine = XRankEngine::Build(BaseCollection(), DiskOptions(dir));
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->AddDocument(LiveUri(1), LiveXml(1)).ok());
  }
  // Simulate a crash mid-append: a valid frame prefix with no payload.
  {
    std::FILE* f =
        std::fopen((dir + "/" + storage::kWalFileName).c_str(), "ab");
    ASSERT_NE(f, nullptr);
    uint32_t magic = storage::kLogRecordMagic;
    uint32_t length = 4096;  // claims more bytes than exist
    std::fwrite(&magic, sizeof(magic), 1, f);
    std::fwrite(&length, sizeof(length), 1, f);
    std::fclose(f);
  }
  auto reopened = XRankEngine::Open(BaseCollection(), DiskOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_GT((*reopened)->update_counters().wal_dropped_bytes, 0u);
  EXPECT_EQ((*reopened)->update_counters().wal_replayed_records, 1u);
  auto response = (*reopened)->Query("fresh1", 10, IndexKind::kDil);
  ASSERT_TRUE(response.ok());
  EXPECT_GT(CountDocResults(*response, LiveUri(1)), 0u);
  // The truncated log accepts appends again.
  EXPECT_TRUE((*reopened)->AddDocument(LiveUri(2), LiveXml(2)).ok());
}

TEST_F(LiveUpdateTest, FailedWalAppendIsNotAcknowledgedAndHeals) {
  std::string dir = FreshDir("walheal");
  auto engine = XRankEngine::Build(BaseCollection(), DiskOptions(dir));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->AddDocument(LiveUri(1), LiveXml(1)).ok());
  {
    FailPointSpec spec;
    spec.action = Action::kTornWrite;
    spec.max_triggers = 1;
    ScopedFailPoint fp("wal.torn_append", spec);
    EXPECT_FALSE((*engine)->AddDocument(LiveUri(2), LiveXml(2)).ok());
  }
  // The torn frame was cut back out: the log accepts the next append and
  // replays cleanly, with no trace of the unacknowledged document.
  EXPECT_TRUE((*engine)->AddDocument(LiveUri(3), LiveXml(3)).ok());
  engine->reset();
  auto reopened = XRankEngine::Open(BaseCollection(), DiskOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->update_counters().wal_dropped_bytes, 0u);
  auto response = (*reopened)->Query("shared", 20, IndexKind::kDil);
  ASSERT_TRUE(response.ok());
  EXPECT_GT(CountDocResults(*response, LiveUri(1)), 0u);
  EXPECT_EQ(CountDocResults(*response, LiveUri(2)), 0u);
  EXPECT_GT(CountDocResults(*response, LiveUri(3)), 0u);
}

// --- fault injection at every flush/compaction commit window ---

// After an injected error at any window, the engine keeps serving, a
// retried flush succeeds, and a reopen sees every acknowledged add.
TEST_F(LiveUpdateTest, FlushCommitWindowFaultsAreRecoverable) {
  for (const char* point :
       {"segment_flush.before_rename", "segment_flush.before_manifest",
        "wal.rewrite_rename"}) {
    std::string dir = FreshDir(std::string("flushfault_") + point);
    auto engine = XRankEngine::Build(BaseCollection(), DiskOptions(dir));
    ASSERT_TRUE(engine.ok()) << point;
    for (int i = 1; i <= 2; ++i) {
      ASSERT_TRUE((*engine)->AddDocument(LiveUri(i), LiveXml(i)).ok())
          << point;
    }
    {
      FailPointSpec spec;
      spec.max_triggers = 1;
      ScopedFailPoint fp(point, spec);
      EXPECT_FALSE((*engine)->Flush().ok()) << point;
    }
    // Still serving (from WAL-backed delta or the committed segment).
    auto during = (*engine)->Query("shared", 20, IndexKind::kDil);
    ASSERT_TRUE(during.ok()) << point;
    EXPECT_GT(CountDocResults(*during, LiveUri(1)), 0u) << point;
    // Retry succeeds and is idempotent.
    ASSERT_TRUE((*engine)->Flush().ok()) << point;
    engine->reset();
    auto reopened = XRankEngine::Open(BaseCollection(), DiskOptions(dir));
    ASSERT_TRUE(reopened.ok()) << point << ": " << reopened.status();
    auto response = (*reopened)->Query("shared", 20, IndexKind::kDil);
    ASSERT_TRUE(response.ok()) << point;
    EXPECT_GT(CountDocResults(*response, LiveUri(1)), 0u) << point;
    EXPECT_GT(CountDocResults(*response, LiveUri(2)), 0u) << point;
  }
}

TEST_F(LiveUpdateTest, CompactionCommitWindowFaultsAreRecoverable) {
  for (const char* point :
       {"segment_compact.before_rename", "segment_compact.before_manifest",
        "wal.rewrite_rename"}) {
    std::string dir = FreshDir("compactfault");
    auto engine = XRankEngine::Build(BaseCollection(), DiskOptions(dir));
    ASSERT_TRUE(engine.ok()) << point;
    ASSERT_TRUE((*engine)->AddDocument(LiveUri(1), LiveXml(1)).ok());
    ASSERT_TRUE((*engine)->Flush().ok());
    ASSERT_TRUE((*engine)->AddDocument(LiveUri(2), LiveXml(2)).ok());
    ASSERT_TRUE((*engine)->Flush().ok());
    {
      FailPointSpec spec;
      spec.max_triggers = 1;
      ScopedFailPoint fp(point, spec);
      EXPECT_FALSE((*engine)->CompactSegments().ok()) << point;
    }
    auto during = (*engine)->Query("shared", 20, IndexKind::kDil);
    ASSERT_TRUE(during.ok()) << point;
    EXPECT_GT(CountDocResults(*during, LiveUri(1)), 0u) << point;
    EXPECT_GT(CountDocResults(*during, LiveUri(2)), 0u) << point;
    ASSERT_TRUE((*engine)->CompactSegments().ok()) << point;
    EXPECT_EQ((*engine)->update_counters().segment_count, 1u) << point;
    engine->reset();
    auto reopened = XRankEngine::Open(BaseCollection(), DiskOptions(dir));
    ASSERT_TRUE(reopened.ok()) << point << ": " << reopened.status();
    auto response = (*reopened)->Query("shared", 20, IndexKind::kDil);
    ASSERT_TRUE(response.ok()) << point;
    EXPECT_GT(CountDocResults(*response, LiveUri(1)), 0u) << point;
    EXPECT_GT(CountDocResults(*response, LiveUri(2)), 0u) << point;
  }
}

// Satellite: CompactDeletions' crash windows. An injected fault between the
// per-kind index rebuilds must leave the committed base index serving, and
// a retry must complete the compaction.
TEST_F(LiveUpdateTest, CompactDeletionsRebuildFaultIsRecoverable) {
  std::string dir = FreshDir("compactdel");
  auto engine = XRankEngine::Build(BaseCollection(), DiskOptions(dir));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->DeleteDocument("d2.xml").ok());
  auto filtered = (*engine)->Query("shared alpha", 20, IndexKind::kDil);
  ASSERT_TRUE(filtered.ok());

  for (uint64_t skip : {0u, 1u}) {  // fault before the 1st / 2nd rebuild
    FailPointSpec spec;
    spec.skip = skip;
    spec.max_triggers = 1;
    ScopedFailPoint fp("compact.rebuild", spec);
    EXPECT_FALSE((*engine)->CompactDeletions().ok());
    auto during = (*engine)->Query("shared alpha", 20, IndexKind::kDil);
    ASSERT_TRUE(during.ok());
    ExpectSameResults(*during, *filtered, "during failed compaction");
  }
  // Commit-protocol windows after the rebuilds.
  for (const char* point :
       {"index_commit.before_rename", "index_commit.before_manifest"}) {
    FailPointSpec spec;
    spec.max_triggers = 1;
    ScopedFailPoint fp(point, spec);
    EXPECT_FALSE((*engine)->CompactDeletions().ok()) << point;
    auto during = (*engine)->Query("shared alpha", 20, IndexKind::kDil);
    ASSERT_TRUE(during.ok()) << point;
    ExpectSameResults(*during, *filtered, point);
  }
  ASSERT_TRUE((*engine)->CompactDeletions().ok());
  auto after = (*engine)->Query("shared alpha", 20, IndexKind::kDil);
  ASSERT_TRUE(after.ok());
  ExpectSameResults(*after, *filtered, "after retried compaction");
  engine->reset();
  auto reopened = XRankEngine::Open(BaseCollection(), DiskOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->deleted_document_count(), 1u);
}

// --- result-cache warmth across flush ---

TEST_F(LiveUpdateTest, ResultCacheStaysWarmAcrossFlushAndCompaction) {
  auto engine = XRankEngine::Build(BaseCollection(), InlineOptions());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->AddDocument(LiveUri(1), LiveXml(1)).ok());

  auto warm = (*engine)->Query("shared alpha", 20, IndexKind::kHdil);
  ASSERT_TRUE(warm.ok());
  EXPECT_FALSE(warm->stats.result_cache_hit);
  auto hit = (*engine)->Query("shared alpha", 20, IndexKind::kHdil);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->stats.result_cache_hit);

  // A flush regroups identical content: the cached entry must survive.
  ASSERT_TRUE((*engine)->Flush().ok());
  auto after_flush = (*engine)->Query("shared alpha", 20, IndexKind::kHdil);
  ASSERT_TRUE(after_flush.ok());
  EXPECT_TRUE(after_flush->stats.result_cache_hit);
  ExpectSameResults(*after_flush, *warm, "cached across flush");

  // Merge compaction with nothing dropped also preserves content.
  ASSERT_TRUE((*engine)->AddDocument(LiveUri(2), LiveXml(2)).ok());
  ASSERT_TRUE((*engine)->Flush().ok());
  auto remiss = (*engine)->Query("shared alpha", 20, IndexKind::kHdil);
  ASSERT_TRUE(remiss.ok());
  EXPECT_FALSE(remiss->stats.result_cache_hit);  // the add invalidated
  ASSERT_TRUE((*engine)->CompactSegments().ok());
  auto after_compact = (*engine)->Query("shared alpha", 20, IndexKind::kHdil);
  ASSERT_TRUE(after_compact.ok());
  EXPECT_TRUE(after_compact->stats.result_cache_hit);

  // An add is a content change: the next lookup misses by key.
  ASSERT_TRUE((*engine)->AddDocument(LiveUri(3), LiveXml(3)).ok());
  auto after_add = (*engine)->Query("shared alpha", 20, IndexKind::kHdil);
  ASSERT_TRUE(after_add.ok());
  EXPECT_FALSE(after_add->stats.result_cache_hit);
}

// --- backpressure ---

TEST_F(LiveUpdateTest, BackpressureSurfacesInCountersAndFailureUnblocks) {
  std::string dir = FreshDir("backpressure");
  EngineOptions options = DiskOptions(dir);
  options.background_maintenance = true;
  options.max_delta_documents = 2;
  options.flush_delta_documents = 2;
  auto engine = XRankEngine::Build(BaseCollection(), options);
  ASSERT_TRUE(engine.ok());

  {
    // Make every background flush fail, so the delta stays pinned at the
    // bound no matter how often maintenance retries.
    FailPointSpec spec;
    ScopedFailPoint fp("segment_flush.before_rename", spec);
    ASSERT_TRUE((*engine)->AddDocument(LiveUri(1), LiveXml(1)).ok());
    ASSERT_TRUE((*engine)->AddDocument(LiveUri(2), LiveXml(2)).ok());
    EXPECT_FALSE((*engine)->WaitForMaintenance().ok());
    // The delta is full and maintenance has failed: the blocked producer
    // is woken with the sticky failure instead of hanging forever.
    EXPECT_FALSE((*engine)->AddDocument(LiveUri(3), LiveXml(3)).ok());
    auto counters = (*engine)->update_counters();
    EXPECT_GE(counters.backpressure_waits, 1u);
  }

  // Failpoint disarmed: an explicit flush drains the delta and the
  // producer gets through.
  ASSERT_TRUE((*engine)->Flush().ok());
  EXPECT_TRUE((*engine)->AddDocument(LiveUri(3), LiveXml(3)).ok());
  ASSERT_TRUE((*engine)->WaitForMaintenance().ok());
}

// --- snapshot isolation under concurrency ---

TEST_F(LiveUpdateTest, QueriesNeverObservePartialSwapsDuringMaintenance) {
  EngineOptions options = InlineOptions();
  options.cold_cache_per_query = false;  // concurrent queries share pools
  options.result_cache_entries = 0;      // force real execution every time
  auto engine = XRankEngine::Build(BaseCollection(), options);
  ASSERT_TRUE(engine.ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries_ok{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto response = (*engine)->Query("shared", 20, IndexKind::kDil);
        if (!response.ok()) {
          failed.store(true);
          return;
        }
        // The base collection is never mutated: every snapshot must hold
        // at least the three base documents.
        if (response->results.empty()) {
          failed.store(true);
          return;
        }
        queries_ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int round = 1; round <= 10 && !failed.load(); ++round) {
    ASSERT_TRUE(
        (*engine)->AddDocument(LiveUri(round), LiveXml(round)).ok());
    ASSERT_TRUE((*engine)->Flush().ok());
    if (round % 3 == 0) {
      ASSERT_TRUE((*engine)->CompactSegments().ok());
    }
  }
  // Keep the readers running until they have demonstrably overlapped the
  // maintenance above (bounded: give up after ~2 s).
  for (int spin = 0; spin < 2000 && queries_ok.load() < 50 && !failed.load();
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (auto& thread : readers) thread.join();
  EXPECT_FALSE(failed.load());
  EXPECT_GT(queries_ok.load(), 0u);
  auto response = (*engine)->Query("shared", 40, IndexKind::kDil);
  ASSERT_TRUE(response.ok());
  for (int round = 1; round <= 10; ++round) {
    EXPECT_GT(CountDocResults(*response, LiveUri(round)), 0u) << round;
  }
}

}  // namespace
}  // namespace xrank
