// Tests for document-granularity updates (paper Section 4.5): tombstone
// deletion with immediate query filtering, and compaction that rebuilds the
// physical indexes without the deleted documents.

#include <gtest/gtest.h>

#include <map>

#include "core/engine.h"
#include "xml/parser.h"

namespace xrank {
namespace {

using core::EngineOptions;
using core::XRankEngine;
using index::IndexKind;

std::vector<xml::Document> SmallCollection() {
  std::vector<xml::Document> docs;
  const char* sources[] = {
      "<a><t>shared alpha one</t></a>",
      "<a><t>shared alpha two</t></a>",
      "<a><t>shared alpha three</t></a>",
  };
  const char* uris[] = {"d1.xml", "d2.xml", "d3.xml"};
  for (int i = 0; i < 3; ++i) {
    auto doc = xml::ParseDocument(sources[i], uris[i]);
    EXPECT_TRUE(doc.ok()) << doc.status();
    docs.push_back(std::move(doc).value());
  }
  return docs;
}

EngineOptions AllIndexes() {
  EngineOptions options;
  options.indexes = {IndexKind::kNaiveId, IndexKind::kNaiveRank,
                     IndexKind::kDil, IndexKind::kRdil, IndexKind::kHdil};
  return options;
}

size_t CountDocResults(const core::EngineResponse& response,
                       const std::string& uri) {
  size_t count = 0;
  for (const auto& result : response.results) {
    if (result.document_uri == uri) ++count;
  }
  return count;
}

TEST(EngineUpdatesTest, DeleteFiltersResultsImmediately) {
  auto engine = XRankEngine::Build(SmallCollection(), AllIndexes());
  ASSERT_TRUE(engine.ok()) << engine.status();

  for (IndexKind kind :
       {IndexKind::kNaiveId, IndexKind::kNaiveRank, IndexKind::kDil,
        IndexKind::kRdil, IndexKind::kHdil}) {
    auto before = (*engine)->Query("shared alpha", 20, kind);
    ASSERT_TRUE(before.ok());
    EXPECT_GT(CountDocResults(*before, "d2.xml"), 0u);
  }

  ASSERT_TRUE((*engine)->DeleteDocument("d2.xml").ok());
  EXPECT_EQ((*engine)->deleted_document_count(), 1u);

  for (IndexKind kind :
       {IndexKind::kNaiveId, IndexKind::kNaiveRank, IndexKind::kDil,
        IndexKind::kRdil, IndexKind::kHdil}) {
    auto after = (*engine)->Query("shared alpha", 20, kind);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(CountDocResults(*after, "d2.xml"), 0u)
        << index::IndexKindName(kind);
    EXPECT_GT(CountDocResults(*after, "d1.xml"), 0u);
    EXPECT_GT(CountDocResults(*after, "d3.xml"), 0u);
  }
}

TEST(EngineUpdatesTest, DeleteUnknownUriFails) {
  auto engine = XRankEngine::Build(SmallCollection(), AllIndexes());
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE((*engine)->DeleteDocument("nope.xml").ok());
}

TEST(EngineUpdatesTest, CompactionShrinksIndexesAndPreservesResults) {
  auto engine = XRankEngine::Build(SmallCollection(), AllIndexes());
  ASSERT_TRUE(engine.ok());
  uint64_t entries_before =
      (*engine)->index_stats(IndexKind::kDil).entry_count;

  ASSERT_TRUE((*engine)->DeleteDocument("d2.xml").ok());
  // Capture each structure's tombstone-filtered results (the naive kinds
  // legitimately include spurious ancestors, so compare per kind).
  std::map<IndexKind, core::EngineResponse> filtered;
  for (IndexKind kind :
       {IndexKind::kNaiveId, IndexKind::kNaiveRank, IndexKind::kDil,
        IndexKind::kRdil, IndexKind::kHdil}) {
    auto response = (*engine)->Query("shared alpha", 20, kind);
    ASSERT_TRUE(response.ok());
    filtered.emplace(kind, std::move(response).value());
  }

  ASSERT_TRUE((*engine)->CompactDeletions().ok());
  uint64_t entries_after =
      (*engine)->index_stats(IndexKind::kDil).entry_count;
  EXPECT_LT(entries_after, entries_before);

  // Same results through the rebuilt indexes, for every structure.
  for (auto& [kind, expected] : filtered) {
    auto compacted = (*engine)->Query("shared alpha", 20, kind);
    ASSERT_TRUE(compacted.ok()) << compacted.status();
    ASSERT_EQ(compacted->results.size(), expected.results.size())
        << index::IndexKindName(kind);
    for (size_t i = 0; i < compacted->results.size(); ++i) {
      EXPECT_EQ(compacted->results[i].id, expected.results[i].id);
      EXPECT_NEAR(compacted->results[i].rank, expected.results[i].rank,
                  1e-9);
    }
    EXPECT_EQ(CountDocResults(*compacted, "d2.xml"), 0u);
  }
}

TEST(EngineUpdatesTest, CompactWithoutDeletionsIsNoOp) {
  auto engine = XRankEngine::Build(SmallCollection(), AllIndexes());
  ASSERT_TRUE(engine.ok());
  uint64_t entries_before =
      (*engine)->index_stats(IndexKind::kDil).entry_count;
  ASSERT_TRUE((*engine)->CompactDeletions().ok());
  EXPECT_EQ((*engine)->index_stats(IndexKind::kDil).entry_count,
            entries_before);
}

TEST(EngineUpdatesTest, DeleteAllDocumentsYieldsEmptyResults) {
  auto engine = XRankEngine::Build(SmallCollection(), AllIndexes());
  ASSERT_TRUE(engine.ok());
  for (const char* uri : {"d1.xml", "d2.xml", "d3.xml"}) {
    ASSERT_TRUE((*engine)->DeleteDocument(uri).ok());
  }
  auto response = (*engine)->Query("shared", 10, IndexKind::kDil);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->results.empty());
  ASSERT_TRUE((*engine)->CompactDeletions().ok());
  auto after = (*engine)->Query("shared", 10, IndexKind::kHdil);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->results.empty());
}

TEST(EngineUpdatesTest, ResultCacheServesRepeatedQueries) {
  auto engine = XRankEngine::Build(SmallCollection(), AllIndexes());
  ASSERT_TRUE(engine.ok()) << engine.status();

  auto first = (*engine)->Query("shared alpha", 20, IndexKind::kDil);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->stats.result_cache_hit);

  auto second = (*engine)->Query("shared alpha", 20, IndexKind::kDil);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->stats.result_cache_hit);
  ASSERT_EQ(second->results.size(), first->results.size());
  for (size_t i = 0; i < second->results.size(); ++i) {
    EXPECT_EQ(second->results[i].id, first->results[i].id);
    EXPECT_NEAR(second->results[i].rank, first->results[i].rank, 1e-12);
    EXPECT_EQ(second->results[i].document_uri,
              first->results[i].document_uri);
  }

  // Different m, kind, or terms are distinct cache entries.
  auto other_m = (*engine)->Query("shared alpha", 5, IndexKind::kDil);
  ASSERT_TRUE(other_m.ok());
  EXPECT_FALSE(other_m->stats.result_cache_hit);
  auto other_kind = (*engine)->Query("shared alpha", 20, IndexKind::kHdil);
  ASSERT_TRUE(other_kind.ok());
  EXPECT_FALSE(other_kind->stats.result_cache_hit);
  auto other_terms = (*engine)->Query("shared", 20, IndexKind::kDil);
  ASSERT_TRUE(other_terms.ok());
  EXPECT_FALSE(other_terms->stats.result_cache_hit);
}

TEST(EngineUpdatesTest, ResultCacheCanBeDisabled) {
  EngineOptions options = AllIndexes();
  options.result_cache_entries = 0;
  auto engine = XRankEngine::Build(SmallCollection(), options);
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < 2; ++i) {
    auto response = (*engine)->Query("shared alpha", 20, IndexKind::kDil);
    ASSERT_TRUE(response.ok());
    EXPECT_FALSE(response->stats.result_cache_hit);
  }
}

TEST(EngineUpdatesTest, DeleteAndCompactionInvalidateResultCache) {
  auto engine = XRankEngine::Build(SmallCollection(), AllIndexes());
  ASSERT_TRUE(engine.ok());

  auto warm = (*engine)->Query("shared alpha", 20, IndexKind::kHdil);
  ASSERT_TRUE(warm.ok());
  auto cached = (*engine)->Query("shared alpha", 20, IndexKind::kHdil);
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(cached->stats.result_cache_hit);
  EXPECT_GT(CountDocResults(*cached, "d2.xml"), 0u);

  // Deletion must not leave stale entries behind: the next query re-executes
  // and reflects the tombstone.
  ASSERT_TRUE((*engine)->DeleteDocument("d2.xml").ok());
  auto after_delete = (*engine)->Query("shared alpha", 20, IndexKind::kHdil);
  ASSERT_TRUE(after_delete.ok());
  EXPECT_FALSE(after_delete->stats.result_cache_hit);
  EXPECT_EQ(CountDocResults(*after_delete, "d2.xml"), 0u);

  // The re-executed (filtered) response is cached again.
  auto recached = (*engine)->Query("shared alpha", 20, IndexKind::kHdil);
  ASSERT_TRUE(recached.ok());
  EXPECT_TRUE(recached->stats.result_cache_hit);
  EXPECT_EQ(CountDocResults(*recached, "d2.xml"), 0u);

  // Compaction rebuilds the physical indexes but answers are unchanged (the
  // tombstone filter already hid the deleted documents), so cached
  // responses stay warm — and still identical.
  ASSERT_TRUE((*engine)->CompactDeletions().ok());
  auto after_compact = (*engine)->Query("shared alpha", 20, IndexKind::kHdil);
  ASSERT_TRUE(after_compact.ok());
  EXPECT_TRUE(after_compact->stats.result_cache_hit);
  EXPECT_EQ(CountDocResults(*after_compact, "d2.xml"), 0u);
  ASSERT_EQ(after_compact->results.size(), recached->results.size());
  for (size_t i = 0; i < after_compact->results.size(); ++i) {
    EXPECT_EQ(after_compact->results[i].id, recached->results[i].id);
    EXPECT_NEAR(after_compact->results[i].rank, recached->results[i].rank,
                1e-9);
  }
}

}  // namespace
}  // namespace xrank
