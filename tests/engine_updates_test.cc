// Tests for document-granularity updates (paper Section 4.5): tombstone
// deletion with immediate query filtering, and compaction that rebuilds the
// physical indexes without the deleted documents.

#include <gtest/gtest.h>

#include <map>

#include "core/engine.h"
#include "xml/parser.h"

namespace xrank {
namespace {

using core::EngineOptions;
using core::XRankEngine;
using index::IndexKind;

std::vector<xml::Document> SmallCollection() {
  std::vector<xml::Document> docs;
  const char* sources[] = {
      "<a><t>shared alpha one</t></a>",
      "<a><t>shared alpha two</t></a>",
      "<a><t>shared alpha three</t></a>",
  };
  const char* uris[] = {"d1.xml", "d2.xml", "d3.xml"};
  for (int i = 0; i < 3; ++i) {
    auto doc = xml::ParseDocument(sources[i], uris[i]);
    EXPECT_TRUE(doc.ok()) << doc.status();
    docs.push_back(std::move(doc).value());
  }
  return docs;
}

EngineOptions AllIndexes() {
  EngineOptions options;
  options.indexes = {IndexKind::kNaiveId, IndexKind::kNaiveRank,
                     IndexKind::kDil, IndexKind::kRdil, IndexKind::kHdil};
  return options;
}

size_t CountDocResults(const core::EngineResponse& response,
                       const std::string& uri) {
  size_t count = 0;
  for (const auto& result : response.results) {
    if (result.document_uri == uri) ++count;
  }
  return count;
}

TEST(EngineUpdatesTest, DeleteFiltersResultsImmediately) {
  auto engine = XRankEngine::Build(SmallCollection(), AllIndexes());
  ASSERT_TRUE(engine.ok()) << engine.status();

  for (IndexKind kind :
       {IndexKind::kNaiveId, IndexKind::kNaiveRank, IndexKind::kDil,
        IndexKind::kRdil, IndexKind::kHdil}) {
    auto before = (*engine)->Query("shared alpha", 20, kind);
    ASSERT_TRUE(before.ok());
    EXPECT_GT(CountDocResults(*before, "d2.xml"), 0u);
  }

  ASSERT_TRUE((*engine)->DeleteDocument("d2.xml").ok());
  EXPECT_EQ((*engine)->deleted_document_count(), 1u);

  for (IndexKind kind :
       {IndexKind::kNaiveId, IndexKind::kNaiveRank, IndexKind::kDil,
        IndexKind::kRdil, IndexKind::kHdil}) {
    auto after = (*engine)->Query("shared alpha", 20, kind);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(CountDocResults(*after, "d2.xml"), 0u)
        << index::IndexKindName(kind);
    EXPECT_GT(CountDocResults(*after, "d1.xml"), 0u);
    EXPECT_GT(CountDocResults(*after, "d3.xml"), 0u);
  }
}

TEST(EngineUpdatesTest, DeleteUnknownUriFails) {
  auto engine = XRankEngine::Build(SmallCollection(), AllIndexes());
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE((*engine)->DeleteDocument("nope.xml").ok());
}

TEST(EngineUpdatesTest, CompactionShrinksIndexesAndPreservesResults) {
  auto engine = XRankEngine::Build(SmallCollection(), AllIndexes());
  ASSERT_TRUE(engine.ok());
  uint64_t entries_before =
      (*engine)->index_stats(IndexKind::kDil).entry_count;

  ASSERT_TRUE((*engine)->DeleteDocument("d2.xml").ok());
  // Capture each structure's tombstone-filtered results (the naive kinds
  // legitimately include spurious ancestors, so compare per kind).
  std::map<IndexKind, core::EngineResponse> filtered;
  for (IndexKind kind :
       {IndexKind::kNaiveId, IndexKind::kNaiveRank, IndexKind::kDil,
        IndexKind::kRdil, IndexKind::kHdil}) {
    auto response = (*engine)->Query("shared alpha", 20, kind);
    ASSERT_TRUE(response.ok());
    filtered.emplace(kind, std::move(response).value());
  }

  ASSERT_TRUE((*engine)->CompactDeletions().ok());
  uint64_t entries_after =
      (*engine)->index_stats(IndexKind::kDil).entry_count;
  EXPECT_LT(entries_after, entries_before);

  // Same results through the rebuilt indexes, for every structure.
  for (auto& [kind, expected] : filtered) {
    auto compacted = (*engine)->Query("shared alpha", 20, kind);
    ASSERT_TRUE(compacted.ok()) << compacted.status();
    ASSERT_EQ(compacted->results.size(), expected.results.size())
        << index::IndexKindName(kind);
    for (size_t i = 0; i < compacted->results.size(); ++i) {
      EXPECT_EQ(compacted->results[i].id, expected.results[i].id);
      EXPECT_NEAR(compacted->results[i].rank, expected.results[i].rank,
                  1e-9);
    }
    EXPECT_EQ(CountDocResults(*compacted, "d2.xml"), 0u);
  }
}

TEST(EngineUpdatesTest, CompactWithoutDeletionsIsNoOp) {
  auto engine = XRankEngine::Build(SmallCollection(), AllIndexes());
  ASSERT_TRUE(engine.ok());
  uint64_t entries_before =
      (*engine)->index_stats(IndexKind::kDil).entry_count;
  ASSERT_TRUE((*engine)->CompactDeletions().ok());
  EXPECT_EQ((*engine)->index_stats(IndexKind::kDil).entry_count,
            entries_before);
}

TEST(EngineUpdatesTest, DeleteAllDocumentsYieldsEmptyResults) {
  auto engine = XRankEngine::Build(SmallCollection(), AllIndexes());
  ASSERT_TRUE(engine.ok());
  for (const char* uri : {"d1.xml", "d2.xml", "d3.xml"}) {
    ASSERT_TRUE((*engine)->DeleteDocument(uri).ok());
  }
  auto response = (*engine)->Query("shared", 10, IndexKind::kDil);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->results.empty());
  ASSERT_TRUE((*engine)->CompactDeletions().ok());
  auto after = (*engine)->Query("shared", 10, IndexKind::kHdil);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->results.empty());
}

}  // namespace
}  // namespace xrank
