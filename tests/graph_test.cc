// Unit tests for the hyperlinked XML graph: Dewey assignment, attribute
// promotion, IDREF/XLink resolution, HTML mode.

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "xml/parser.h"

namespace xrank::graph {
namespace {

xml::Document Parse(const char* text, const char* uri) {
  auto doc = xml::ParseDocument(text, uri);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return std::move(doc).value();
}

TEST(GraphBuilderTest, DeweyIdsFollowDocumentOrder) {
  GraphBuilder builder;
  BuilderOptions options;
  options.attributes_as_subelements = false;
  builder = GraphBuilder(options);
  ASSERT_TRUE(builder.AddDocument(Parse("<a><b/><c><d/></c></a>", "u")).ok());
  auto graph = std::move(builder).Finalize();
  ASSERT_TRUE(graph.ok()) << graph.status();

  auto root = graph->FindByDewey(dewey::DeweyId({0}));
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(graph->name(*root), "a");
  auto b = graph->FindByDewey(dewey::DeweyId({0, 0}));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(graph->name(*b), "b");
  auto d = graph->FindByDewey(dewey::DeweyId({0, 1, 0}));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(graph->name(*d), "d");
  EXPECT_FALSE(graph->FindByDewey(dewey::DeweyId({0, 2})).ok());
  EXPECT_FALSE(graph->FindByDewey(dewey::DeweyId({1})).ok());
}

TEST(GraphBuilderTest, AttributesBecomeSubElements) {
  GraphBuilder builder;
  ASSERT_TRUE(
      builder.AddDocument(Parse(R"(<w date="28 July 2000"><t>x</t></w>)", "u"))
          .ok());
  auto graph = std::move(builder).Finalize();
  ASSERT_TRUE(graph.ok());
  // Attribute element precedes element children in sibling order.
  auto attr = graph->FindByDewey(dewey::DeweyId({0, 0}));
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(graph->name(*attr), "date");
  EXPECT_EQ(graph->DirectText(*attr), "28 July 2000");
  auto t = graph->FindByDewey(dewey::DeweyId({0, 1}));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(graph->name(*t), "t");
}

TEST(GraphBuilderTest, IdrefResolvesWithinDocument) {
  GraphBuilder builder;
  ASSERT_TRUE(builder
                  .AddDocument(Parse(
                      R"(<ps><p id="1"><cite ref="2">x</cite></p><p id="2">y</p></ps>)",
                      "u"))
                  .ok());
  auto graph = std::move(builder).Finalize();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->total_hyperlink_count(), 1u);
  // Find the cite element and check its link target is paper 2.
  bool found = false;
  for (NodeId u = 0; u < graph->node_count(); ++u) {
    if (graph->is_element(u) && graph->name(u) == "cite") {
      ASSERT_EQ(graph->hyperlinks(u).size(), 1u);
      NodeId target = graph->hyperlinks(u)[0];
      EXPECT_EQ(graph->name(target), "p");
      EXPECT_EQ(graph->DirectText(target), "y");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(GraphBuilderTest, XlinkResolvesAcrossDocuments) {
  GraphBuilder builder;
  ASSERT_TRUE(builder
                  .AddDocument(Parse(
                      R"(<paper><cite xlink="two.xml">x</cite></paper>)", "one.xml"))
                  .ok());
  ASSERT_TRUE(builder.AddDocument(Parse("<paper>target</paper>", "two.xml")).ok());
  auto graph = std::move(builder).Finalize();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->total_hyperlink_count(), 1u);
  // The target is the root of document 1.
  for (NodeId u = 0; u < graph->node_count(); ++u) {
    if (graph->is_element(u) && !graph->hyperlinks(u).empty()) {
      NodeId target = graph->hyperlinks(u)[0];
      EXPECT_EQ(graph->node(target).document, 1u);
      EXPECT_EQ(target, graph->documents()[1].root);
    }
  }
}

TEST(GraphBuilderTest, DanglingLinksCounted) {
  GraphBuilder builder;
  ASSERT_TRUE(builder
                  .AddDocument(Parse(
                      R"(<a><b ref="nope">x</b><c xlink="missing.xml">y</c></a>)",
                      "u"))
                  .ok());
  auto graph = std::move(builder).Finalize();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->total_hyperlink_count(), 0u);
}

TEST(GraphBuilderTest, DanglingLinksErrorWhenStrict) {
  BuilderOptions options;
  options.ignore_dangling_links = false;
  GraphBuilder builder(options);
  ASSERT_TRUE(builder.AddDocument(Parse(R"(<a ref="nope"/>)", "u")).ok());
  auto graph = std::move(builder).Finalize();
  EXPECT_FALSE(graph.ok());
}

TEST(GraphBuilderTest, ElementCountsPerDocument) {
  GraphBuilder builder;
  BuilderOptions options;
  options.attributes_as_subelements = false;
  builder = GraphBuilder(options);
  ASSERT_TRUE(builder.AddDocument(Parse("<a><b/><c/></a>", "u1")).ok());
  ASSERT_TRUE(builder.AddDocument(Parse("<a/>", "u2")).ok());
  auto graph = std::move(builder).Finalize();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->element_count(), 4u);
  EXPECT_EQ(graph->documents()[0].element_count, 3u);
  EXPECT_EQ(graph->documents()[1].element_count, 1u);
}

TEST(GraphBuilderTest, HtmlModeSingleElement) {
  GraphBuilder builder;
  ASSERT_TRUE(builder
                  .AddHtmlDocument(Parse(
                      R"(<html><body><p>hello world</p><a href="x.html">link</a></body></html>)",
                      "page.html"))
                  .ok());
  ASSERT_TRUE(builder.AddHtmlDocument(Parse("<html>x html</html>", "x.html")).ok());
  auto graph = std::move(builder).Finalize();
  ASSERT_TRUE(graph.ok());
  // Each HTML document contributes exactly one element.
  EXPECT_EQ(graph->element_count(), 2u);
  EXPECT_EQ(graph->documents()[0].element_count, 1u);
  NodeId root = graph->documents()[0].root;
  EXPECT_EQ(graph->DirectText(root), "hello world link");
  // The href becomes a hyperlink from root to root.
  ASSERT_EQ(graph->hyperlinks(root).size(), 1u);
  EXPECT_EQ(graph->hyperlinks(root)[0], graph->documents()[1].root);
}

TEST(GraphTest, DeepTextConcatenatesSubtree) {
  GraphBuilder builder;
  ASSERT_TRUE(
      builder.AddDocument(Parse("<a>x<b>y</b><c><d>z</d></c></a>", "u")).ok());
  auto graph = std::move(builder).Finalize();
  ASSERT_TRUE(graph.ok());
  NodeId root = graph->documents()[0].root;
  std::string text = graph->DeepText(root);
  EXPECT_NE(text.find("x"), std::string::npos);
  EXPECT_NE(text.find("y"), std::string::npos);
  EXPECT_NE(text.find("z"), std::string::npos);
}

}  // namespace
}  // namespace xrank::graph
